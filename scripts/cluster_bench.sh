#!/usr/bin/env bash
# Regenerates BENCH_cluster.json: sweep throughput of one unclustered
# dlsimd node vs a 3-node loopback cluster fronted by a non-owner
# (BenchmarkSweep{SingleNode,ThreeNode} in cmd/dlsimd), plus the
# client-visible latency of a failed-over read against a dead owner
# (BenchmarkFailoverLatency, mean and p99).
#
# All sides live in one test binary built from the current tree.
# Each sweep iteration boots fresh pools, so jobs always recompute:
# the single/three gap is the cluster tax at N=3 on one machine
# (loopback forwarding + JSON relay), bought for failover.  The two
# sweep sides are interleaved run by run to share machine conditions.
# The failover side measures the steady-state ring-skip path: the
# owner is already probe-marked down when the timer starts.
#
# Determinism under failover is enforced separately:
# TestChaosKillAndFaultsPreserveDeterminism compares per-config
# aggregates bit-for-bit against a single node while the owner is
# killed mid-batch, and TestClusterFailoverRecomputesOnDeadOwner does
# the same per job.
#
# Usage: scripts/cluster_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_cluster.json}"
runs="${CB_RUNS:-3}"
benchtime="${CB_BENCHTIME:-2x}"
fo_benchtime="${CB_FO_BENCHTIME:-300x}"

# One trap covers both temp files: the output capture used to be
# cleaned only by an explicit rm at the end, leaking it whenever a
# benchmark run or the awk extraction failed mid-script.
bench_bin="" bench_out=""
trap 'rm -f "$bench_bin" "$bench_out"' EXIT
bench_bin=$(mktemp /tmp/cluster_bench.XXXXXX)
go test -c -o "$bench_bin" ./cmd/dlsimd/

# best <file> <benchmark> -> "<min ns/op> <jobs/op>"
best() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    if (min == "" || $3 < min) { min = $3; for (i = 4; i < NF; i++) if ($(i+1) == "jobs/op") jobs = $i }
  } END { print min, jobs }' "$1"
}

# metric <file> <benchmark> <unit> -> min value reported with that unit
metric() {
  awk -v name="$2" -v unit="$3" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 4; i < NF; i++) if ($(i+1) == unit && (min == "" || $i < min)) min = $i
  } END { print min }' "$1"
}

bench_out=$(mktemp /tmp/cluster_bench_out.XXXXXX)
: > "$bench_out"
for i in $(seq "$runs"); do
  echo "run $i/$runs (single-node)..." >&2
  "$bench_bin" -test.run '^$' -test.bench 'BenchmarkSweepSingleNode$' \
    -test.benchtime "$benchtime" >> "$bench_out"
  echo "run $i/$runs (three-node)..." >&2
  "$bench_bin" -test.run '^$' -test.bench 'BenchmarkSweepThreeNode$' \
    -test.benchtime "$benchtime" >> "$bench_out"
done
echo "failover latency..." >&2
"$bench_bin" -test.run '^$' -test.bench 'BenchmarkFailoverLatency$' \
  -test.benchtime "$fo_benchtime" >> "$bench_out"

read -r single_ns jobs <<<"$(best "$bench_out" BenchmarkSweepSingleNode)"
read -r three_ns _ <<<"$(best "$bench_out" BenchmarkSweepThreeNode)"
read -r fo_ns _ <<<"$(best "$bench_out" BenchmarkFailoverLatency)"
fo_p99_us=$(metric "$bench_out" BenchmarkFailoverLatency p99_us)

jps() { awk -v ns="$1" -v jobs="$2" 'BEGIN { printf "%.2f", jobs / ns * 1e9 }'; }
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", a / b }'; }

overhead=$(ratio "$three_ns" "$single_ns")
fo_mean_us=$(awk -v ns="$fo_ns" 'BEGIN { printf "%.1f", ns / 1000 }')

host_cpu=$(awk -F': *' '/model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || echo unknown)
host_n=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)

cat > "$out" <<EOF
{
  "benchmark": "Cluster throughput and failover latency: BenchmarkSweep{SingleNode,ThreeNode} interleaved, best of $runs x $benchtime per side, plus BenchmarkFailoverLatency ($fo_benchtime)",
  "description": "End-to-end wall time of a 12-job sweep through one unclustered dlsimd node vs a 3-node loopback cluster fronted by a non-owner (every submission and poll pays one forwarding hop). Each iteration boots fresh pools so jobs always recompute. Failover latency is the client-visible round trip of a GET whose ring owner is dead and already probe-marked down: the ring walk skips it and the next replica answers. Determinism under failover is proven by TestChaosKillAndFaultsPreserveDeterminism (bit-identical per-config aggregates vs single node with the owner killed mid-batch).",
  "command": "make cluster-bench",
  "host": {
    "cpu": "$host_cpu",
    "cpus": $host_n,
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)"
  },
  "baseline": "measured live (same binary, one node vs three loopback nodes, interleaved)",
  "results": {
    "jobs_per_sweep": $jobs,
    "single_node_ns_per_sweep": $single_ns,
    "three_node_ns_per_sweep": $three_ns,
    "single_node_jobs_per_sec": $(jps "$single_ns" "$jobs"),
    "three_node_jobs_per_sec": $(jps "$three_ns" "$jobs"),
    "three_node_overhead": $overhead,
    "failover_mean_us": $fo_mean_us,
    "failover_p99_us": $fo_p99_us
  },
  "notes": "All three loopback nodes share one machine, so the cluster side cannot show an N-node speedup — the interesting number is the overhead ratio (forwarding + relay tax, ~1.0 means the tax vanishes under compute-bound sweeps) and the failover latencies. ns/op moves with host load (shared vCPU); the sweep sides are interleaved so they share conditions."
}
EOF
echo "wrote $out (3-node overhead ${overhead}x, failover p99 ${fo_p99_us}us)"
