#!/usr/bin/env bash
# Adds the PR's two speed-round rows to BENCH_kernel.json:
#
#  1. compiled_traces: simulated-instruction throughput of the kernel
#     stepping instruction by instruction vs replaying the compiled
#     trace (BenchmarkCompute{Interpreted,Compiled} in internal/cpu),
#     interleaved A/B in one binary.  The two sides must report the
#     exact same instrs/op — they are the same simulation — so any
#     divergence fails the script (the full counter-level proof is
#     TestCompiledBitIdentical and the two-path TestGoldenCounters).
#  2. sampled_simulation: the sampled estimator's accuracy row
#     (BenchmarkSampledVsExact in internal/runner): exact vs estimated
#     per-request cost, the 95% half-width, relative error, and the
#     measured-phase wall-clock ratio.  The exact value landing inside
#     the reported interval is the acceptance gate; within_ci=0 fails
#     the script.
#
# Both accuracy metrics are deterministic (fixed seed, bit-exact
# kernel), so they are host-invariant; only the ns/op and wall-ratio
# figures move with machine load.
#
# Usage: scripts/sample_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_kernel.json}"
runs="${SK_RUNS:-5}"
benchtime="${SK_BENCHTIME:-1s}"

cpu_bin="" runner_bin="" bench_out="" sampled_out="" merged=""
trap 'rm -f "$cpu_bin" "$runner_bin" "$bench_out" "$sampled_out" "$merged"' EXIT

cpu_bin=$(mktemp /tmp/sample_bench_cpu.XXXXXX)
runner_bin=$(mktemp /tmp/sample_bench_runner.XXXXXX)
go test -c -o "$cpu_bin" ./internal/cpu/
go test -c -o "$runner_bin" ./internal/runner/

# best <file> <benchmark> -> "<min ns/op> <instrs/op>"
best() {
  awk -v name="$2" '$1 ~ "^"name"(-[0-9]+)?$" {
    if (min == "" || $3 < min) { min = $3; instrs = $(NF-1) }
  } END { print min, instrs }' "$1"
}

# metric <file> <benchmark> <unit> -> the value reported with that
# unit on the benchmark's line (deterministic metrics: any run's value)
metric() {
  awk -v name="$2" -v unit="$3" '$1 ~ "^"name"(-[0-9]+)?$" {
    for (i = 4; i < NF; i++) if ($(i+1) == unit) { print $i; exit }
  }' "$1"
}

bench_out=$(mktemp /tmp/sample_bench_out.XXXXXX)
: > "$bench_out"
for i in $(seq "$runs"); do
  echo "run $i/$runs (interpreted vs compiled)..." >&2
  "$cpu_bin" -test.run '^$' -test.bench 'BenchmarkCompute(Interpreted|Compiled)$' \
    -test.benchtime "$benchtime" >> "$bench_out"
done

sampled_out=$(mktemp /tmp/sample_bench_sampled.XXXXXX)
echo "sampled vs exact..." >&2
"$runner_bin" -test.run '^$' -test.bench 'BenchmarkSampledVsExact$' \
  -test.benchtime 1x > "$sampled_out"

read -r interp_ns interp_instrs <<<"$(best "$bench_out" BenchmarkComputeInterpreted)"
read -r compiled_ns compiled_instrs <<<"$(best "$bench_out" BenchmarkComputeCompiled)"
if [ "$interp_instrs" != "$compiled_instrs" ]; then
  echo "FAIL: compiled path simulated $compiled_instrs instrs/op, interpreter $interp_instrs (golden divergence)" >&2
  exit 1
fi

exact_us=$(metric "$sampled_out" BenchmarkSampledVsExact exact_us)
sampled_us=$(metric "$sampled_out" BenchmarkSampledVsExact sampled_us)
ci95_us=$(metric "$sampled_out" BenchmarkSampledVsExact ci95_us)
rel_err=$(metric "$sampled_out" BenchmarkSampledVsExact rel_err_pct)
within_ci=$(metric "$sampled_out" BenchmarkSampledVsExact within_ci)
wall_speedup=$(metric "$sampled_out" BenchmarkSampledVsExact wall_speedup)
if ! awk -v w="$within_ci" 'BEGIN { exit !(w == 1) }'; then
  echo "FAIL: exact per-request cost ${exact_us}us outside the sampled 95% interval ${sampled_us} +/- ${ci95_us}us" >&2
  exit 1
fi

speedup=$(awk -v a="$interp_ns" -v b="$compiled_ns" 'BEGIN { printf "%.2f", a / b }')

if [ ! -s "$out" ]; then
  echo '{}' > "$out"
fi
merged=$(mktemp /tmp/sample_bench_merged.XXXXXX)
jq \
  --argjson interp_ns "$interp_ns" \
  --argjson compiled_ns "$compiled_ns" \
  --argjson instrs "$interp_instrs" \
  --argjson speedup "$speedup" \
  --argjson exact_us "$exact_us" \
  --argjson sampled_us "$sampled_us" \
  --argjson ci95_us "$ci95_us" \
  --argjson rel_err "$rel_err" \
  --argjson wall_speedup "$wall_speedup" \
  '. + {
    compiled_traces: {
      benchmark: "BenchmarkCompute{Interpreted,Compiled} (internal/cpu), interleaved, best of runs",
      command: "make sample-bench",
      interpreted_ns_per_op: $interp_ns,
      compiled_ns_per_op: $compiled_ns,
      instrs_per_op: $instrs,
      compiled_speedup: $speedup,
      notes: "Same CPU, same image, same counters (instrs/op asserted equal; full proof: cpu.TestCompiledBitIdentical and the two-path experiments.TestGoldenCounters). Acceptance target is >= 2x on this workload."
    },
    sampled_simulation: {
      benchmark: "BenchmarkSampledVsExact (internal/runner): memcached/base seed=3, 600 requests, 8 windows, 16 detailed warmup per window",
      command: "make sample-bench",
      exact_us_per_req: $exact_us,
      sampled_us_per_req: $sampled_us,
      ci95_us: $ci95_us,
      rel_err_pct: $rel_err,
      measured_wall_speedup: $wall_speedup,
      notes: "Deterministic accuracy row: the exact per-request cost must land inside the sampled estimate'\''s 95% interval (gated by this script). The wall ratio is the only host-dependent figure."
    }
  }' "$out" > "$merged"
mv "$merged" "$out"
merged=""
echo "wrote $out (compiled ${speedup}x, sampled ${sampled_us} +/- ${ci95_us}us vs exact ${exact_us}us, ${rel_err}% rel err)"
