GO ?= go

.PHONY: check fmt race faults chaos bench-runner bench-fault obs-bench kernel-bench pool-bench store-bench cluster-bench timeline-bench sample-bench churn-bench all

all: check

# Tier-1 verification: formatting, vet, build, full test suite.
check: fmt
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Race-detector pass over the concurrent subsystems: the job engine,
# the service, and the concurrency tests of the runner-backed
# experiment suite, plus the kernel bit-identity golden test (its
# counters must survive the race-instrumented memory model too).
# (The experiments package's full artefact tests are single-threaded
# and ~10x slower under race, so only these targeted tests run here;
# `make check` covers the rest.)
race:
	$(GO) test -race -timeout 20m ./internal/pool/... ./internal/runner/... ./internal/cluster/... ./cmd/dlsimd/...
	$(GO) test -race -timeout 20m -run 'TestSuiteParallelMatchesSequential|TestSuiteConcurrentUse|TestGoldenCounters' ./internal/experiments/

# Robustness pass: the concurrent subsystems under low-probability
# deterministic fault injection (fixed seed, see internal/faultinject)
# plus the race detector.  Injected transient errors are absorbed by
# the runner's default retry policy; the suite must still pass.
faults:
	DLSIM_FAULTS='runner.execute=error:0.02,dlsimd.submit=delay:0.2:2ms' DLSIM_FAULT_SEED=42 \
		$(GO) test -race -timeout 20m ./internal/faultinject/... ./internal/runner/... ./internal/cluster/... ./cmd/dlsimd/...
	DLSIM_FAULTS='runner.execute=error:0.02' DLSIM_FAULT_SEED=42 \
		$(GO) test -race -timeout 20m -run 'TestSuiteSurvivesTransientFaults|TestSuiteRetriedResultsBitIdentical' ./internal/experiments/

# Sequential vs parallel full-suite wall-clock (results feed
# BENCH_runner.json).
bench-runner:
	$(GO) test -run '^$$' -bench 'BenchmarkSuite(Sequential|Parallel)$$' -benchtime 1x ./internal/experiments/

# Hardened-path overhead: the disabled-injection-point hot path and
# the suite wall-clock with the robustness layer in place (results
# feed BENCH_fault.json).
bench-fault:
	$(GO) test -run '^$$' -bench 'BenchmarkFireDisabled' ./internal/faultinject/
	$(GO) test -run '^$$' -bench 'BenchmarkSuiteParallel$$' -benchtime 1x ./internal/experiments/

# Telemetry overhead: instrument micro-benchmarks plus the full-suite
# wall clock with tracing on vs off; regenerates BENCH_obs.json.
obs-bench:
	scripts/obs_bench.sh

# Advisory A/B of timeline interval sampling on the kernel hot loop:
# sampler detached vs attached at the production 64Ki-instruction
# interval, with allocation counts.  The full gated run (feeding
# BENCH_obs.json) is part of `make obs-bench`; this target is the
# quick standalone check.  Pair with the zero-cost-off proofs:
# `go test -run 'TestTimelineOffNoAllocs|TestSamplerBitIdentical' ./internal/cpu/`.
timeline-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRunTimeline(Off|On)$$' -benchmem ./internal/cpu/

# Simulation-kernel throughput before/after the de-mapped hot loop;
# regenerates BENCH_kernel.json.  Pair with the bit-identity proof:
# `go test -run TestGoldenCounters ./internal/experiments/`.
kernel-bench:
	scripts/kernel_bench.sh

# Compiled-trace and sampled-simulation rows: interpreted vs compiled
# kernel throughput (interleaved A/B) plus the sampled estimator's
# accuracy against an exact run of the same job; merges
# compiled_traces and sampled_simulation sections into
# BENCH_kernel.json.  Fails on instrs/op divergence between the two
# kernel paths or on the exact cost falling outside the sampled 95%
# interval.  Pair with the bit-identity proofs:
# `go test -run 'TestCompiledBitIdentical|TestGoldenCounters' ./internal/cpu/ ./internal/experiments/`.
sample-bench:
	scripts/sample_bench.sh

# Library-churn ABTB pressure: the plugin-server and jit workloads'
# hit rate and flushes per 1k instructions vs a no-churn baseline;
# regenerates BENCH_churn.json (metrics are counter-derived and
# host-invariant; the script gates churn-flushes > baseline).  Pair
# with the correctness sweep:
# `go test -run 'TestChurn|TestFlushEntryPoints|TestStaleProgramTraps|TestFastForwardGOTStoreSnoop' ./internal/runner/ ./internal/abtb/ ./internal/cpu/`.
churn-bench:
	scripts/churn_bench.sh

# Artifact-pool throughput: a repeated-spec sweep with pooling on vs
# off (Options.DisablePool), interleaved A/B; regenerates
# BENCH_pool.json.  Pair with the bit-identity proof:
# `go test -run 'TestPooledBitIdenticalToUnpooled|TestGoldenCounters' ./internal/runner/ ./internal/experiments/`.
pool-bench:
	scripts/pool_bench.sh

# Chaos suite under the race detector: a 3-node loopback cluster
# takes injected forwarding faults (error/delay/hang via
# internal/faultinject) and a hard owner kill mid-batch, and must
# converge to per-config aggregates bit-identical to a single node
# with failovers recorded and never a 5xx that skipped failover.
chaos:
	$(GO) test -race -timeout 20m -count=1 -run 'TestChaos' -v ./cmd/dlsimd/

# Cluster throughput and failover latency: a sweep through one node
# vs a 3-node loopback cluster, interleaved, plus the round-trip of a
# failed-over read (mean + p99); regenerates BENCH_cluster.json.
# Pair with the bit-identity proof: `make chaos`.
cluster-bench:
	scripts/cluster_bench.sh

# Result-store warm-start throughput: a repeated-spec sweep served
# from a pre-populated store vs computed from an empty one,
# interleaved A/B; regenerates BENCH_store.json.  Pair with the
# bit-identity proof:
# `go test -run 'TestStoreWarmStart|TestHTTPRestartWarmStart' ./internal/runner/ ./cmd/dlsimd/`.
store-bench:
	scripts/store_bench.sh
