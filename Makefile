GO ?= go

.PHONY: check race bench-runner all

all: check

# Tier-1 verification: vet, build, full test suite.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

# Race-detector pass over the concurrent subsystems: the job engine,
# the service, and the concurrency tests of the runner-backed
# experiment suite.  (The experiments package's full artefact tests
# are single-threaded and ~10x slower under race, so only the
# concurrent-path tests run here; `make check` covers the rest.)
race:
	$(GO) test -race -timeout 20m ./internal/runner/... ./cmd/dlsimd/...
	$(GO) test -race -timeout 20m -run 'TestSuiteParallelMatchesSequential|TestSuiteConcurrentUse' ./internal/experiments/

# Sequential vs parallel full-suite wall-clock (results feed
# BENCH_runner.json).
bench-runner:
	$(GO) test -run '^$$' -bench 'BenchmarkSuite(Sequential|Parallel)$$' -benchtime 1x ./internal/experiments/
