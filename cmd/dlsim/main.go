// Command dlsim runs one workload under one system configuration and
// prints the resulting hardware counters — the building block the
// experiments binary composes.
//
// Usage:
//
//	dlsim [-workload apache] [-system enhanced] [-warm N] [-requests N] [-seed N]
//
// Systems: base (lazy dynamic linking, unmodified CPU), enhanced
// (lazy + ABTB), eager (BIND_NOW), static, patched (§4.3 software
// emulation).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/linker"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "apache", "apache | firefox | memcached | mysql | plugin-server | jit")
	system := flag.String("system", "base", "base | enhanced | eager | static | patched")
	plt := flag.String("plt", "x86", "trampoline flavour: x86 | arm (paper Fig. 2)")
	warm := flag.Int("warm", 50, "warmup requests")
	requests := flag.Int("requests", 200, "measured requests")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*wl, *system, *plt, *warm, *requests, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

func run(wl, system, plt string, warm, requests int, seed uint64) error {
	gens := map[string]func(uint64) *workload.Workload{
		"apache": workload.Apache, "firefox": workload.Firefox,
		"memcached": workload.Memcached, "mysql": workload.MySQL,
		"plugin-server": workload.PluginServer, "jit": workload.JIT,
	}
	gen, ok := gens[wl]
	if !ok {
		return fmt.Errorf("unknown workload %q", wl)
	}
	cfgs := map[string]func(uint64) core.Config{
		"base": core.Base, "enhanced": core.Enhanced, "eager": core.Eager,
		"static": core.Static, "patched": core.Patched,
	}
	cfg, ok := cfgs[system]
	if !ok {
		return fmt.Errorf("unknown system %q", system)
	}

	conf := cfg(seed)
	switch plt {
	case "x86":
	case "arm":
		switch system {
		case "base":
			conf = core.BaseARM(seed)
		case "enhanced":
			conf = core.EnhancedARM(seed)
		default:
			conf.Linking.PLT = linker.PLTARM
		}
	default:
		return fmt.Errorf("unknown plt flavour %q", plt)
	}

	w := gen(seed)
	sys, err := w.NewSystem(conf)
	if err != nil {
		return err
	}
	d := workload.NewDriver(w, sys, seed+17)
	if err := d.Warmup(warm); err != nil {
		return err
	}
	samples, err := d.Run(requests)
	if err != nil {
		return err
	}

	c := sys.Counters()
	pki := core.PKIOf(c)
	fmt.Printf("workload=%s system=%s seed=%d requests=%d\n\n", wl, system, seed, requests)
	fmt.Printf("instructions        %12d\n", c.Instructions)
	fmt.Printf("cycles              %12d  (IPC %.2f)\n", c.Cycles,
		float64(c.Instructions)/float64(c.Cycles))
	fmt.Printf("tramp instrs        %12d  (%.2f PKI)\n", c.TrampInstrs, pki.TrampInstrs)
	fmt.Printf("tramp calls         %12d  (skipped %d, %.1f%%)\n", c.TrampCalls, c.TrampSkips,
		pct(c.TrampSkips, c.TrampCalls))
	fmt.Printf("L1I misses          %12d  (%.2f PKI)\n", c.L1IMisses, pki.L1IMisses)
	fmt.Printf("ITLB misses         %12d  (%.2f PKI)\n", c.ITLBMisses, pki.ITLBMisses)
	fmt.Printf("L1D misses          %12d  (%.2f PKI)\n", c.L1DMisses, pki.L1DMisses)
	fmt.Printf("DTLB misses         %12d  (%.2f PKI)\n", c.DTLBMisses, pki.DTLBMisses)
	fmt.Printf("branch mispredicts  %12d  (%.2f PKI; cond %d, indirect %d, call %d, ret %d)\n",
		c.Mispredicts, pki.Mispredicts, c.MispredCond, c.MispredIndirect, c.MispredCall, c.MispredRet)
	fmt.Printf("BTB evictions       %12d\n", c.BTBEvictions)
	fmt.Printf("resolutions         %12d\n", c.Resolutions)
	if pf := sys.CPU().PageFaults(); pf > 0 {
		fmt.Printf("page faults         %12d  (demand-driven loading)\n", pf)
	}
	if rot := d.Churned(); rot > 0 {
		fmt.Printf("library rotations   %12d\n", rot)
	}
	if sys.CPU().Enhanced() {
		ab := sys.CPU().ABTB()
		fmt.Printf("ABTB                %12d entries used, %d redirects, %d flushes (%d by stores)\n",
			ab.Len(), ab.Redirects(), ab.Flushes(), ab.FlushingStores())
	}
	fmt.Printf("distinct trampolines %11d (lifetime %d)\n",
		sys.Recorder().Distinct(), sys.LifetimeRecorder().Distinct())

	fmt.Println("\nper-class latency (us):")
	for _, cl := range w.Classes {
		s := samples[cl.Name]
		if s.N() == 0 {
			continue
		}
		fmt.Printf("  %-14s n=%-5d mean=%-9.2f p50=%-9.2f p95=%-9.2f p99=%.2f\n",
			cl.Name, s.N(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99))
	}
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
