// Command tracedump is the simulator's pintool (§4.3): it runs a
// workload on the base system, records every library call through a
// PLT trampoline, and dumps the per-trampoline profile — address,
// symbol, call count — together with the ABTB working-set curve that
// Figure 5 is built from.
//
// With -timeline it instead dumps the phase-resolved counter series
// (internal/timeline) sampled while the requests run: per-interval
// deltas of every microarchitectural counter, as JSON or CSV — the
// same format GET /v1/jobs/{id}/timeline serves, for offline use
// without a dlsimd process.
//
// With -compiled it dumps the compiled trace of the linked image
// instead (internal/cpu.Compile): the one-time lowering the service's
// fast-path Run loop replays — superblock coverage, RLE fetch-run
// compression, threaded successor edges, and the largest superblocks
// with their owning modules.
//
// Usage:
//
//	tracedump [-workload apache] [-requests N] [-top N] [-seed N]
//	tracedump -timeline [-interval N] [-format json|csv] [...]
//	tracedump -compiled [-top N] [...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/timeline"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "apache", "apache | firefox | memcached | mysql")
	requests := flag.Int("requests", 200, "requests to trace")
	top := flag.Int("top", 30, "trampolines (or -compiled superblocks) to list")
	seed := flag.Uint64("seed", 1, "simulation seed")
	tl := flag.Bool("timeline", false, "dump the sampled counter timeline instead of the trampoline profile")
	interval := flag.Uint64("interval", 0, "timeline sample interval in retired instructions (0 = default 64Ki)")
	format := flag.String("format", "json", "timeline output format: json | csv")
	compiled := flag.Bool("compiled", false, "dump the linked image's compiled trace instead of running it")
	flag.Parse()

	var err error
	switch {
	case *compiled:
		err = runCompiled(*wl, *top, *seed)
	case *tl:
		err = runTimeline(*wl, *requests, *seed, *interval, *format)
	default:
		err = run(*wl, *requests, *top, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

// runCompiled compiles the linked image's instruction stream and dumps
// the result: the compile-time view the kernel replays, without
// executing a single request.
func runCompiled(wl string, top int, seed uint64) error {
	sys, _, err := setup(wl, seed)
	if err != nil {
		return err
	}
	img := sys.Image()
	cfg := core.Base(seed)
	prog := cpu.Compile(img, cfg.Hardware.L1I.LineBytes)
	st := prog.Stats()

	fmt.Printf("workload=%s line=%dB instructions=%d\n\n", wl, prog.LineBytes(), st.Instructions)
	fmt.Printf("threaded successor edges     %d\n", st.Threaded)
	fmt.Printf("direct calls                 %d (%d through a PLT trampoline, annotated at compile time)\n",
		st.DirectCalls, st.PLTCalls)
	fmt.Printf("superblocks                  %d totalling %d block instructions (entry chains overlap; %.2f per stream instr)\n",
		st.Blocks, st.BlockInstrs, float64(st.BlockInstrs)/float64(st.Instructions))
	fmt.Printf("segments                     %d (%.2f instrs/segment)\n",
		st.Segments, float64(st.BlockInstrs)/float64(max(st.Segments, 1)))
	fmt.Printf("fetch runs                   %d L1I + %d I-TLB (%.2fx compression vs per-instruction fetch)\n",
		st.L1IRuns, st.ITLBRuns, float64(st.BlockInstrs)/float64(max(st.L1IRuns, 1)))
	fmt.Printf("trampoline-body instructions %d inside blocks\n\n", st.PLTInstrs)

	blocks := prog.Blocks()
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].Instrs != blocks[j].Instrs {
			return blocks[i].Instrs > blocks[j].Instrs
		}
		return blocks[i].StartPC < blocks[j].StartPC
	})
	fmt.Printf("%-5s %-18s %-20s %-7s %-5s %s\n", "rank", "start pc", "module", "instrs", "segs", "plt")
	for i, b := range blocks {
		if i >= top {
			fmt.Printf("... %d more\n", len(blocks)-top)
			break
		}
		mod := "?"
		if m := img.ModuleOf(b.StartPC); m != nil {
			mod = m.Name
		}
		fmt.Printf("%-5d %#-18x %-20s %-7d %-5d %d\n", i+1, b.StartPC, mod, b.Instrs, b.Segs, b.PLT)
	}
	return nil
}

// runTimeline replays the workload with an interval sampler attached
// for the request phase (warmup is excluded, mirroring the service's
// measure-window discipline) and writes the series to stdout.
func runTimeline(wl string, requests int, seed, interval uint64, format string) error {
	if format != "json" && format != "csv" {
		return fmt.Errorf("unknown timeline format %q (want json or csv)", format)
	}
	sys, d, err := setup(wl, seed)
	if err != nil {
		return err
	}
	if err := d.Warmup(20); err != nil {
		return err
	}
	col := timeline.NewCollector(interval, timeline.DefaultMaxPoints)
	col.Attach(sys.CPU())
	if _, err := d.Run(requests); err != nil {
		col.Close()
		return err
	}
	s := col.Close()
	if s == nil {
		return fmt.Errorf("no instructions retired; nothing to sample")
	}
	if format == "csv" {
		return timeline.WriteCSV(os.Stdout, s)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// setup builds the (system, driver) pair both modes share.
func setup(wl string, seed uint64) (*core.System, *workload.Driver, error) {
	gens := map[string]func(uint64) *workload.Workload{
		"apache": workload.Apache, "firefox": workload.Firefox,
		"memcached": workload.Memcached, "mysql": workload.MySQL,
	}
	gen, ok := gens[wl]
	if !ok {
		return nil, nil, fmt.Errorf("unknown workload %q", wl)
	}
	w := gen(seed)
	sys, err := w.NewSystem(core.Base(seed))
	if err != nil {
		return nil, nil, err
	}
	return sys, workload.NewDriver(w, sys, seed+17), nil
}

func run(wl string, requests, top int, seed uint64) error {
	sys, d, err := setup(wl, seed)
	if err != nil {
		return err
	}
	if err := d.Warmup(20); err != nil {
		return err
	}
	if _, err := d.Run(requests); err != nil {
		return err
	}

	rec := sys.LifetimeRecorder()
	img := sys.Image()
	fmt.Printf("workload=%s requests=%d library calls=%d distinct trampolines=%d\n\n",
		wl, requests, rec.Total(), rec.Distinct())

	ranked := rec.Ranked()
	fmt.Printf("%-5s %-18s %-28s %s\n", "rank", "plt slot", "symbol", "calls")
	for i, tc := range ranked {
		if i >= top {
			fmt.Printf("... %d more\n", len(ranked)-top)
			break
		}
		mod := "?"
		if m := img.ModuleOf(tc.Slot); m != nil {
			mod = m.Name
		}
		fmt.Printf("%-5d %#-18x %-28s %d\n", i+1, tc.Slot,
			mod+"→"+img.TrampolineSym(tc.Slot), tc.Count)
	}

	fmt.Println("\nABTB working set (LRU stack-distance analysis):")
	fmt.Printf("%-10s %s\n", "entries", "calls skipped")
	sizes := []int{4, 16, 64, 256, 1024, 4096}
	curve := rec.SkipCurveFromDistances(sizes)
	for i, n := range sizes {
		fmt.Printf("%-10d %.1f%%\n", n, curve[i]*100)
	}
	fmt.Printf("\nworking sets: 75%% of skippable calls fit in %d entries; 99%% in %d\n",
		rec.WorkingSet(0.75), rec.WorkingSet(0.99))
	return nil
}
