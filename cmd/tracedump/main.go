// Command tracedump is the simulator's pintool (§4.3): it runs a
// workload on the base system, records every library call through a
// PLT trampoline, and dumps the per-trampoline profile — address,
// symbol, call count — together with the ABTB working-set curve that
// Figure 5 is built from.
//
// Usage:
//
//	tracedump [-workload apache] [-requests N] [-top N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "apache", "apache | firefox | memcached | mysql")
	requests := flag.Int("requests", 200, "requests to trace")
	top := flag.Int("top", 30, "trampolines to list")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if err := run(*wl, *requests, *top, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(wl string, requests, top int, seed uint64) error {
	gens := map[string]func(uint64) *workload.Workload{
		"apache": workload.Apache, "firefox": workload.Firefox,
		"memcached": workload.Memcached, "mysql": workload.MySQL,
	}
	gen, ok := gens[wl]
	if !ok {
		return fmt.Errorf("unknown workload %q", wl)
	}
	w := gen(seed)
	sys, err := w.NewSystem(core.Base(seed))
	if err != nil {
		return err
	}
	d := workload.NewDriver(w, sys, seed+17)
	if err := d.Warmup(20); err != nil {
		return err
	}
	if _, err := d.Run(requests); err != nil {
		return err
	}

	rec := sys.LifetimeRecorder()
	img := sys.Image()
	fmt.Printf("workload=%s requests=%d library calls=%d distinct trampolines=%d\n\n",
		wl, requests, rec.Total(), rec.Distinct())

	ranked := rec.Ranked()
	fmt.Printf("%-5s %-18s %-28s %s\n", "rank", "plt slot", "symbol", "calls")
	for i, tc := range ranked {
		if i >= top {
			fmt.Printf("... %d more\n", len(ranked)-top)
			break
		}
		mod := "?"
		if m := img.ModuleOf(tc.Slot); m != nil {
			mod = m.Name
		}
		fmt.Printf("%-5d %#-18x %-28s %d\n", i+1, tc.Slot,
			mod+"→"+img.TrampolineSym(tc.Slot), tc.Count)
	}

	fmt.Println("\nABTB working set (LRU stack-distance analysis):")
	fmt.Printf("%-10s %s\n", "entries", "calls skipped")
	sizes := []int{4, 16, 64, 256, 1024, 4096}
	curve := rec.SkipCurveFromDistances(sizes)
	for i, n := range sizes {
		fmt.Printf("%-10d %.1f%%\n", n, curve[i]*100)
	}
	fmt.Printf("\nworking sets: 75%% of skippable calls fit in %d entries; 99%% in %d\n",
		rec.WorkingSet(0.75), rec.WorkingSet(0.99))
	return nil
}
