// Command experiments regenerates every table and figure of the
// paper's evaluation (§5) plus this reproduction's ablations, printing
// them in the paper's layout with the published values alongside.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-only LIST] [-ablations] [-workers N]
//	            [-retries N] [-trace-out DIR]
//
// -scale multiplies the measured request counts (0.25 for a quick
// smoke run, 2 for smoother distributions); -only selects a
// comma-separated subset of artefacts (e.g. "table2,figure5");
// -workers sizes the simulation pool the suite fans out on (0 means
// one worker per CPU); -retries caps execution attempts per
// simulation — transient failures (e.g. injected via the DLSIM_FAULTS
// fault-injection environment, see internal/faultinject) are retried
// with capped exponential backoff, so a flaky substrate does not
// abort a long evaluation run; -trace-out dumps every simulation's
// span tree (queued/attempt/backoff phases with generate/link/warmup/
// measure steps) as one JSON file per job in the given directory, for
// profiling where a slow run spent its time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/runner"
)

// dumpTraces writes each retained job trace as <dir>/<jobID>.json and
// returns how many were written.
func dumpTraces(pool *runner.Runner, dir string) (int, error) {
	traces := pool.Tracer().Traces()
	if len(traces) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	for _, tr := range traces {
		snap := tr.Snapshot()
		b, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(filepath.Join(dir, snap.ID+".json"), append(b, '\n'), 0o644); err != nil {
			return 0, err
		}
	}
	return len(traces), nil
}

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed (same seed, same results)")
	scale := flag.Float64("scale", 1, "request-count multiplier")
	only := flag.String("only", "", "comma-separated artefacts (table2,table3,table4,table5,table6,figure4,figure5,figure6,figure7,figure8,memory,speedups)")
	ablations := flag.Bool("ablations", false, "also run ablations A1-A5 (slow)")
	workers := flag.Int("workers", 0, "simulation pool size (0 = one per CPU)")
	retries := flag.Int("retries", 0, "max execution attempts per simulation incl. the first (0 = default 3, 1 = no retry)")
	traceOut := flag.String("trace-out", "", "directory to dump per-simulation span trees as JSON (empty = off)")
	flag.Parse()

	traceCap := 0
	if *traceOut != "" {
		// Retain every simulation of the run, not just the default
		// ring's worth (ablation sweeps can exceed it).
		traceCap = 4096
	}
	pool := runner.New(runner.Options{
		Workers:       *workers,
		Retry:         runner.RetryPolicy{MaxAttempts: *retries},
		TraceCapacity: traceCap,
	})
	defer pool.Close()
	s := experiments.NewSuiteWithRunner(*seed, *scale, pool)
	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type artefact struct {
		name string
		run  func() (string, error)
	}
	arts := []artefact{
		{"table2", func() (string, error) {
			rows, err := s.Table2()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable2(rows), nil
		}},
		{"table3", func() (string, error) {
			rows, err := s.Table3()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable3(rows), nil
		}},
		{"figure4", func() (string, error) {
			series, err := s.Figure4()
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure4(series), nil
		}},
		{"table4", func() (string, error) {
			rows, err := s.Table4()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable4(rows), nil
		}},
		{"figure5", func() (string, error) {
			series, err := s.Figure5()
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure5(series), nil
		}},
		{"figure6", func() (string, error) {
			pairs, err := s.Figure6()
			if err != nil {
				return "", err
			}
			return experiments.FormatCDFPairs("Figure 6. Apache response-time CDFs (SPECweb 2009 request types)", pairs), nil
		}},
		{"table5", func() (string, error) {
			rows, err := s.Table5()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable5(rows), nil
		}},
		{"figure7", func() (string, error) {
			hists, err := s.Figure7()
			if err != nil {
				return "", err
			}
			return experiments.FormatFigure7(hists), nil
		}},
		{"figure8", func() (string, error) {
			pairs, err := s.Figure8()
			if err != nil {
				return "", err
			}
			return experiments.FormatCDFPairs("Figure 8. MySQL response-time CDFs (TPC-C transactions)", pairs), nil
		}},
		{"table6", func() (string, error) {
			rows, err := s.Table6()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable6(rows), nil
		}},
		{"memory", func() (string, error) {
			m, err := s.MemorySavingsExperiment(450) // "hundreds or even thousands of processes"
			if err != nil {
				return "", err
			}
			return experiments.FormatMemorySavings(m), nil
		}},
		{"speedups", func() (string, error) {
			rows, err := s.Speedups()
			if err != nil {
				return "", err
			}
			return experiments.FormatSpeedups(rows), nil
		}},
	}
	if *ablations {
		arts = append(arts,
			artefact{"ablation1", func() (string, error) {
				p, err := s.AblationBloomSize()
				if err != nil {
					return "", err
				}
				return experiments.FormatBloomSweep(p), nil
			}},
			artefact{"ablation2", func() (string, error) {
				p, err := s.AblationBindingModes()
				if err != nil {
					return "", err
				}
				return experiments.FormatBindingModes(p), nil
			}},
			artefact{"ablation3", func() (string, error) {
				p, err := s.AblationExplicitInvalidate()
				if err != nil {
					return "", err
				}
				return experiments.FormatExplicitInvalidate(p), nil
			}},
			artefact{"ablation4", func() (string, error) {
				p, err := s.AblationContextSwitch()
				if err != nil {
					return "", err
				}
				return experiments.FormatContextSwitch(p), nil
			}},
			artefact{"ablation5", func() (string, error) {
				p, err := s.AblationABTBGeometry()
				if err != nil {
					return "", err
				}
				return experiments.FormatABTBGeometry(p), nil
			}},
			artefact{"ablation6", func() (string, error) {
				p, err := s.AblationPLTStyle()
				if err != nil {
					return "", err
				}
				return experiments.FormatPLTStyle(p), nil
			}},
			artefact{"ablation7", func() (string, error) {
				p, err := s.AblationSMP()
				if err != nil {
					return "", err
				}
				return experiments.FormatSMP(p), nil
			}},
		)
	}

	// Reject unknown -only names up front instead of silently printing
	// nothing (e.g. a typo like "tabel2").
	valid := map[string]bool{}
	names := make([]string, 0, len(arts))
	for _, a := range arts {
		valid[a.name] = true
		names = append(names, a.name)
	}
	sort.Strings(names)
	for name := range want {
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "experiments: unknown artefact %q in -only\n", name)
			if strings.HasPrefix(name, "ablation") && !*ablations {
				fmt.Fprintf(os.Stderr, "experiments: ablations require the -ablations flag\n")
			}
			fmt.Fprintf(os.Stderr, "experiments: valid artefacts: %s\n", strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	for _, a := range arts {
		if !sel(a.name) {
			continue
		}
		out, err := a.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if st := pool.Stats(); st.Retries > 0 || st.Panics > 0 {
		fmt.Fprintf(os.Stderr, "experiments: pool absorbed %d transient failure(s) via retry (%d panic(s) recovered)\n",
			st.Retries, st.Panics)
	}
	if *traceOut != "" {
		n, err := dumpTraces(pool, *traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: trace dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d trace(s) to %s\n", n, *traceOut)
	}
}
