package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/timeline"
)

// runTimelineJob pushes a fine-grained-sampling job through the pool
// directly (the HTTP submit path is covered elsewhere) and returns its
// ID.
func runTimelineJob(t *testing.T, pool *runner.Runner, seed uint64) string {
	t.Helper()
	res, err := pool.Run(context.Background(), runner.JobSpec{
		Workload: "memcached", Config: runner.Enhanced, Seed: seed,
		Warm: 5, Measure: 25,
		TimelineInterval: timeline.MinInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.ID
}

// TestTimelineEndpoint covers the single-node contract: JSON by
// default, CSV on request (either spelling), and precise 404s.
func TestTimelineEndpoint(t *testing.T) {
	ts, pool := newTestServer(t)
	id := runTimelineJob(t, pool, 4)

	var out timelineResponse
	code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/timeline", nil, &out)
	if code != http.StatusOK {
		t.Fatalf("GET timeline = %d, want 200", code)
	}
	if out.ID != id || out.Series == nil || len(out.Series.Points) < 2 {
		t.Fatalf("timeline response = %+v, want multi-point series for %s", out, id)
	}

	// CSV via query parameter.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timeline?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("CSV Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 1+len(out.Series.Points) {
		t.Errorf("CSV has %d lines, want header + %d points", len(lines), len(out.Series.Points))
	}
	if !strings.HasPrefix(lines[0], "point,instructions,cycles") {
		t.Errorf("CSV header = %q", lines[0])
	}

	// CSV via Accept.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/timeline", nil)
	req.Header.Set("Accept", "text/csv")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	acceptBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(acceptBody) != string(body) {
		t.Error("Accept: text/csv and ?format=csv disagree")
	}

	// Unknown job.
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/ffffffffffffffff/timeline", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job timeline = %d, want 404", code)
	}

	// Timeline-off job: result servable, timeline 404.
	res, err := pool.Run(context.Background(), runner.JobSpec{
		Workload: "memcached", Config: runner.Base, Seed: 4,
		Warm: 5, Measure: 25, TimelineOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+res.ID, nil, nil); code != http.StatusOK {
		t.Errorf("timeline-off job result = %d, want 200", code)
	}
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/jobs/"+res.ID+"/timeline", nil, nil); code != http.StatusNotFound {
		t.Errorf("timeline-off timeline = %d, want 404", code)
	}
}

// TestTimelineClusterFetch is the acceptance harness: in a 3-node
// loopback cluster, the series fetched from the owner and the series
// fetched through a non-owner (forwarded hop) must be byte-identical,
// in both formats.
func TestTimelineClusterFetch(t *testing.T) {
	h := startCluster(t, 3, nil)
	node := h.nodes[0]

	spec := []byte(`{"workload":"memcached","config":"enhanced","seed":21,"warm":5,"measure":25,"timeline_interval":4096}`)
	var sub submitResponse
	if code, _ := httpDo(t, http.MethodPost, node.url+"/v1/jobs", spec, &sub); code >= 300 {
		t.Fatalf("submit = %d", code)
	}
	pollJob(t, node, sub.ID)

	owner, other := h.ownerOf(sub.ID), h.nonOwnerOf(sub.ID)
	if owner == nil || other == nil {
		t.Fatal("could not locate owner / non-owner nodes")
	}
	fetch := func(n *testNode, suffix string) (string, http.Header) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, n.url+"/v1/jobs/"+sub.ID+"/timeline"+suffix, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET timeline via %s = %d (body %s)", n.name, resp.StatusCode, b)
		}
		return string(b), resp.Header
	}

	direct, _ := fetch(owner, "")
	forwarded, hdr := fetch(other, "")
	if direct != forwarded {
		t.Errorf("forwarded JSON differs from owner JSON:\n  owner %s\n  fwd   %s", direct, forwarded)
	}
	if got := hdr.Get(cluster.NodeHeader); got != owner.name {
		t.Errorf("forwarded response X-Dlsim-Node = %q, want owner %q", got, owner.name)
	}
	if !strings.Contains(direct, `"series"`) || !strings.Contains(direct, `"points"`) {
		t.Errorf("timeline body missing series: %s", direct)
	}

	directCSV, _ := fetch(owner, "?format=csv")
	forwardedCSV, csvHdr := fetch(other, "?format=csv")
	if directCSV != forwardedCSV {
		t.Error("forwarded CSV differs from owner CSV")
	}
	if ct := csvHdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("forwarded CSV Content-Type = %q (relay dropped it?)", ct)
	}
}

// TestStatsClusterTier checks the /v1/stats cluster block: present in
// cluster mode with per-peer forward counts, absent standalone.
func TestStatsClusterTier(t *testing.T) {
	h := startCluster(t, 3, nil)
	node := h.nodes[0]

	// Generate at least one forwarded read: fetch a (nonexistent) ID
	// owned by another node through this one.
	id := "0000000000000000"
	for i := 0; node.cl.Owner(id) == node.name && i < 1000; i++ {
		id = runner.IDFromKey(strings.Repeat("x", i+1))
	}
	httpDo(t, http.MethodGet, node.url+"/v1/jobs/"+id, nil, nil)

	var st statsResponse
	if code, _ := httpDo(t, http.MethodGet, node.url+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if st.Cluster == nil {
		t.Fatal("stats has no cluster tier in cluster mode")
	}
	if st.Cluster.Self != node.name || len(st.Cluster.Peers) != 3 {
		t.Errorf("cluster stats = %+v, want self=%s with 3 peers", st.Cluster, node.name)
	}
	if len(st.Cluster.Forwards) != 2 {
		t.Fatalf("per-peer forward rows = %d, want 2 (remote peers only)", len(st.Cluster.Forwards))
	}
	var ok uint64
	for _, f := range st.Cluster.Forwards {
		ok += f.OK + f.Miss + f.Error
	}
	if ok == 0 {
		t.Error("no forwards counted after a forwarded read")
	}

	// Standalone: no cluster block.
	ts, _ := newTestServer(t)
	var solo statsResponse
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/stats", nil, &solo); code != http.StatusOK {
		t.Fatalf("standalone stats = %d", code)
	}
	if solo.Cluster != nil {
		t.Errorf("standalone stats grew a cluster tier: %+v", solo.Cluster)
	}
}

// TestMetricsHistoryEndpoint covers /v1/metrics/history: 404 when
// disabled, index and named-series queries when enabled.
func TestMetricsHistoryEndpoint(t *testing.T) {
	tsOff, _ := newTestServer(t)
	if code, _ := httpDo(t, http.MethodGet, tsOff.URL+"/v1/metrics/history", nil, nil); code != http.StatusNotFound {
		t.Errorf("disabled history = %d, want 404", code)
	}

	pool := runner.New(runner.Options{Workers: 2})
	hist := telemetry.NewHistory(pool.Metrics(), 16, time.Second)
	ts, _ := newTestServerOpts(t, runner.Options{Workers: 2}, serverConfig{history: hist})
	_ = pool // hist snapshots pool's registry; the server only reads hist
	t.Cleanup(pool.Close)

	hist.Record(time.Now().Add(-time.Minute))
	hist.Record(time.Now())

	var idx historyIndexResponse
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/metrics/history", nil, &idx); code != http.StatusOK {
		t.Fatalf("history index = %d", code)
	}
	if idx.Samples != 2 || len(idx.Names) == 0 || idx.IntervalS != 1 {
		t.Errorf("index = %+v, want 2 samples, names, interval 1s", idx)
	}

	name := idx.Names[0]
	var series historySeriesResponse
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/metrics/history?name="+name, nil, &series); code != http.StatusOK {
		t.Fatalf("history series = %d", code)
	}
	if series.Name != name || len(series.Points) != 2 {
		t.Errorf("series = %+v, want 2 points of %q", series, name)
	}
	var recent historySeriesResponse
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/metrics/history?name="+name+"&minutes=0.5", nil, &recent); code != http.StatusOK {
		t.Fatalf("bounded history = %d", code)
	}
	if len(recent.Points) != 1 {
		t.Errorf("minutes=0.5 returned %d points, want 1", len(recent.Points))
	}
	if code, _ := httpDo(t, http.MethodGet, ts.URL+"/v1/metrics/history?minutes=-3", nil, nil); code != http.StatusBadRequest {
		t.Errorf("negative minutes = %d, want 400", code)
	}
}

// TestRuntimeGauges checks the build-info and runtime gauges surface
// in /metrics.
func TestRuntimeGauges(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"dlsim_build_info{", "dlsim_go_goroutines", "dlsim_go_heap_bytes"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The go_version label must carry a real toolchain version.
	if !strings.Contains(text, `go_version="go1.`) && !strings.Contains(text, `go_version="devel`) {
		t.Error("dlsim_build_info has no plausible go_version label")
	}
}
