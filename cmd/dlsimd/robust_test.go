package main

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/runner"
)

// armed arms one injection point for the test's duration.
func armed(t *testing.T, point string, cfg faultinject.PointConfig) {
	t.Helper()
	faultinject.Enable(point, cfg)
	t.Cleanup(faultinject.Reset)
}

// postRaw posts a job body and returns the raw response (caller
// closes).
func postRaw(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeError decodes a structured error envelope.
func decodeError(t *testing.T, resp *http.Response) errorJSON {
	t.Helper()
	defer resp.Body.Close()
	var e errorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error response is not structured JSON: %v", err)
	}
	return e
}

// pollState polls the job until it reaches a terminal-or-wanted state.
func pollState(t *testing.T, ts *httptest.Server, id string, want runner.JobState) jobResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		job, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if job.State == want {
			return job
		}
		if job.State == runner.StateDone || job.State == runner.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job state = %s (err %q), want %s", job.State, job.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

const specA = `{"workload":"memcached","config":"base","seed":101,"warm":5,"measure":25}`
const specB = `{"workload":"memcached","config":"base","seed":102,"warm":5,"measure":25}`
const specC = `{"workload":"memcached","config":"base","seed":103,"warm":5,"measure":25}`

// TestShed429 is the acceptance criterion: with the admission queue
// full, POST /v1/jobs returns 429 with a Retry-After hint and a
// structured body, while resubmission of an in-flight spec still
// coalesces.
func TestShed429(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Hang, Prob: 1})
	ts, pool := newTestServerOpts(t,
		runner.Options{Workers: 1, MaxQueue: 1},
		serverConfig{retryAfter: 2 * time.Second})

	subA, code := postJob(t, ts, specA)
	if code != http.StatusAccepted {
		t.Fatalf("submit A = %d, want 202", code)
	}
	pollState(t, ts, subA.ID, runner.StateRunning)
	if _, code := postJob(t, ts, specB); code != http.StatusAccepted {
		t.Fatalf("submit B = %d, want 202", code)
	}

	resp := postRaw(t, ts, specC)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	e := decodeError(t, resp)
	if e.Code != http.StatusTooManyRequests || !strings.Contains(e.Error, "queue full") {
		t.Errorf("shed body = %+v", e)
	}

	// The full queue still serves idempotent resubmission.
	if sub, code := postJob(t, ts, specA); code != http.StatusOK || !sub.Cached {
		t.Errorf("resubmit A = %d cached=%v, want 200 coalesced", code, sub.Cached)
	}
	if st := pool.Stats(); st.Shed != 1 {
		t.Errorf("stats shed = %d, want 1", st.Shed)
	}

	// Release the hang; both admitted jobs finish.
	faultinject.Reset()
	if job := pollState(t, ts, subA.ID, runner.StateDone); job.Error != "" {
		t.Errorf("job A failed: %s", job.Error)
	}
}

// TestInjectedPanicOverHTTP is the acceptance criterion end to end:
// an injected worker panic fails only that job — the service keeps
// serving, the job reports the failure, and /v1/stats records it.
func TestInjectedPanicOverHTTP(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Panic, Prob: 1, Count: 1})
	ts, pool := newTestServer(t)

	sub, code := postJob(t, ts, specA)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	var job jobResponse
	deadline := time.Now().Add(time.Minute)
	for {
		job, _ = getJob(t, ts, sub.ID)
		if job.State == runner.StateFailed || job.State == runner.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.State != runner.StateFailed || !strings.Contains(job.Error, "panic") {
		t.Fatalf("job = %s err=%q, want failed with panic error", job.State, job.Error)
	}

	// The process survived: a clean job still runs on the same pool.
	sub2, code := postJob(t, ts, specB)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit = %d", code)
	}
	if job := pollState(t, ts, sub2.ID, runner.StateDone); job.Result == nil {
		t.Error("post-panic job has no result")
	}
	st := pool.Stats()
	if st.Panics != 1 || st.Failed != 1 || st.Completed != 1 {
		t.Errorf("stats panics=%d failed=%d completed=%d, want 1/1/1", st.Panics, st.Failed, st.Completed)
	}
}

// TestRetriesVisibleInStats: a transiently failing job retries to
// success, and both the job view and /v1/stats expose the counts.
func TestRetriesVisibleInStats(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1, Count: 2})
	ts, _ := newTestServerOpts(t, runner.Options{
		Workers: 1,
		Retry:   runner.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}, serverConfig{})

	sub, _ := postJob(t, ts, specA)
	job := pollState(t, ts, sub.ID, runner.StateDone)
	if job.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", job.Attempts)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Retries != 2 || st.Failed != 0 || st.Completed != 1 {
		t.Errorf("stats retries=%d failed=%d completed=%d, want 2/0/1", st.Retries, st.Failed, st.Completed)
	}
}

// TestHealthAndReady: /healthz stays 200; /readyz flips to 503 once
// draining and submissions are refused with a structured 503.
func TestHealthAndReady(t *testing.T) {
	leakcheck.Check(t)
	pool := runner.New(runner.Options{Workers: 1})
	srv := newServer(pool, serverConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); pool.Close() })

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Errorf("healthz = %d, want 200", c)
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Errorf("readyz = %d, want 200", c)
	}

	srv.startDrain()
	if c := get("/healthz"); c != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200 (liveness unaffected)", c)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", c)
	}
	resp := postRaw(t, ts, specA)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit = %d, want 503", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != http.StatusServiceUnavailable {
		t.Errorf("draining submit body = %+v", e)
	}
}

// TestGracefulDrainEndToEnd is the acceptance criterion: shutdown
// stops admission and drains the in-flight job to completion before
// the deadline, abandoning nothing.
func TestGracefulDrainEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	pool := runner.New(runner.Options{Workers: 2})
	srv := newServer(pool, serverConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); pool.Close() })

	sub, code := postJob(t, ts, specA)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	// The shutdown sequence main() runs on SIGTERM.
	srv.startDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if abandoned := pool.Drain(ctx); abandoned != 0 {
		t.Fatalf("drain abandoned %d job(s), want 0", abandoned)
	}

	// The drained job is done and still queryable for late pollers.
	job, _ := getJob(t, ts, sub.ID)
	if job.State != runner.StateDone || job.Result == nil {
		t.Errorf("drained job = %s result=%v, want done with result", job.State, job.Result != nil)
	}
	// New work is refused with a structured 503.
	resp := postRaw(t, ts, specB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestStructuredErrorsEverywhere: every failure path returns the
// {"error", "code"} envelope.
func TestStructuredErrorsEverywhere(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := postRaw(t, ts, `{"workload":"nginx","config":"base","seed":1}`)
	if e := decodeError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != http.StatusBadRequest || e.Error == "" {
		t.Errorf("bad spec: status=%d body=%+v", resp.StatusCode, e)
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeError(t, resp2); resp2.StatusCode != http.StatusNotFound || e.Code != http.StatusNotFound {
		t.Errorf("unknown job: status=%d body=%+v", resp2.StatusCode, e)
	}
}

// TestHandlerPanicRecovered: a panic inside a handler (injected at
// the dlsimd.submit point) is converted to a structured 500 and the
// server keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	leakcheck.Check(t)
	armed(t, "dlsimd.submit", faultinject.PointConfig{Mode: faultinject.Panic, Prob: 1, Count: 1})
	ts, _ := newTestServer(t)

	resp := postRaw(t, ts, specA)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != http.StatusInternalServerError || !strings.Contains(e.Error, "panic") {
		t.Errorf("panic body = %+v", e)
	}
	// Next request is served normally.
	if c := func() int {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}(); c != http.StatusOK {
		t.Errorf("healthz after handler panic = %d", c)
	}
}

// TestRequestLogging: every request produces one structured JSON log
// line (method, path, status, duration, request ID), the request ID
// is echoed in the X-Request-ID header and the error body, and an
// incoming X-Request-ID is honored end to end.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	pool := runner.New(runner.Options{Workers: 1})
	ts := httptest.NewServer(newServer(pool, serverConfig{logger: log.New(&buf, "", 0)}))
	t.Cleanup(func() { ts.Close(); pool.Close() })

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "corr-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "corr-123" {
		t.Errorf("X-Request-ID echoed = %q, want corr-123", got)
	}
	e := decodeError(t, resp)
	if e.RequestID != "corr-123" {
		t.Errorf("error body request_id = %q, want corr-123", e.RequestID)
	}

	var line struct {
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		DurMS     float64 `json:"dur_ms"`
		RequestID string  `json:"request_id"`
		Time      string  `json:"time"`
	}
	raw := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(raw), &line); err != nil {
		t.Fatalf("request log is not one JSON object: %v\nlog: %q", err, raw)
	}
	if line.Msg != "request" || line.Method != "GET" || line.Path != "/v1/jobs/nope" ||
		line.Status != 404 || line.RequestID != "corr-123" || line.Time == "" {
		t.Errorf("request log = %+v, want request GET /v1/jobs/nope 404 corr-123", line)
	}

	// Without an incoming header the server mints an ID and still
	// threads it through header, body, and log.
	buf.Reset()
	resp2, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	minted := resp2.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatal("no X-Request-ID minted")
	}
	if e2 := decodeError(t, resp2); e2.RequestID != minted {
		t.Errorf("error body request_id = %q, header %q", e2.RequestID, minted)
	}
	if !strings.Contains(buf.String(), minted) {
		t.Errorf("request log %q missing minted id %q", buf.String(), minted)
	}
}
