package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// waitJobDone polls GET /v1/jobs/{id} until the job leaves the queue,
// failing the test on a non-200 poll or a failed job.
func waitJobDone(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		job, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if job.State == runner.StateDone {
			return job
		}
		if job.State == runner.StateFailed {
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after deadline", id, job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNormalizeInteractionsHTTP pins JobSpec.Normalize's interaction
// rules end to end through POST /v1/jobs: explicit sub-minimum budgets
// are rejected even when Scale would rescue them, scaled-down defaults
// clamp instead, and the sampling parameters reject contradictory
// combinations at submission time with a 400, not at run time.
func TestNormalizeInteractionsHTTP(t *testing.T) {
	ts, _ := newTestServer(t)

	// An explicit measure below MinMeasure is unsatisfiable even
	// though scale=4 would lift the folded count to 40: the caller
	// asked for a 10-request measurement and must hear "no", not get a
	// silently different job.
	bad := []string{
		`{"workload":"apache","config":"base","seed":1,"measure":10,"scale":4}`,
		// Sampling contradictions: an explicit timeline interval on a
		// sampled job, warmup without windows, a single window (no
		// variance), and a split too fine for warmup+1 per window.
		`{"workload":"apache","config":"base","seed":1,"sample_windows":4,"timeline_interval":50000}`,
		`{"workload":"apache","config":"base","seed":1,"sample_warmup":3}`,
		`{"workload":"apache","config":"base","seed":1,"sample_windows":1}`,
		`{"workload":"apache","config":"base","seed":1,"measure":20,"sample_windows":10}`,
		`{"workload":"apache","config":"base","seed":1,"sample_windows":-2}`,
	}
	for _, body := range bad {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit %s: status = %d, want 400", body, code)
		}
	}

	// A scaled-down *default* budget clamps up to MinMeasure instead
	// of erroring: the caller never named a count, so there is nothing
	// to contradict.
	sub, code := postJob(t, ts, `{"workload":"apache","config":"base","seed":1,"scale":0.01,"warm":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("scaled submit status = %d, want 202", code)
	}
	if sub.Spec.Measure != runner.MinMeasure || sub.Spec.Scale != 0 {
		t.Errorf("scaled spec = %+v, want measure clamped to %d with scale folded", sub.Spec, runner.MinMeasure)
	}
}

// TestPinnedJobIDs pins three content-derived job IDs computed before
// sampling existed.  The sample_windows/sample_warmup zero values must
// leave canonical keys — and therefore every ID clients may have
// stored — byte-identical; a change here is a cache-invalidation event
// for every deployment.
func TestPinnedJobIDs(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		body string
		id   string
	}{
		{`{"workload":"apache","config":"base","seed":1}`, "bef829b6146c4efe"},
		{`{"workload":"mysql","config":"enhanced","seed":7,"scale":0.25}`, "8f19dfea2875520b"},
		{`{"workload":"memcached","config":"base","seed":3,"timeline_off":true}`, "5ea820c297eb8dbe"},
	}
	for _, c := range cases {
		sub, code := postJob(t, ts, c.body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: status = %d, want 202", c.body, code)
		}
		if sub.ID != c.id {
			t.Errorf("submit %s: id = %s, want pinned %s (key %q)", c.body, sub.ID, c.id, sub.Key)
		}
		if strings.Contains(sub.Key, "|sw=") {
			t.Errorf("exact job key %q carries a sampling suffix", sub.Key)
		}
	}
}

// TestEndToEndSampledJob drives a sampled job through the HTTP API:
// the normalized spec comes back with sampling defaults resolved and
// the timeline forced off, the result carries per-metric mean ± ci95
// blocks, and the timeline endpoint reports the job as
// timeline-disabled rather than pending.
func TestEndToEndSampledJob(t *testing.T) {
	ts, _ := newTestServer(t)
	sub, code := postJob(t, ts,
		`{"workload":"memcached","config":"base","seed":3,"warm":5,"measure":160,"sample_windows":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if !sub.Spec.TimelineOff || sub.Spec.SampleWarmup != runner.DefaultSampleWarmup {
		t.Errorf("normalized spec = %+v, want timeline off and default sample warmup", sub.Spec)
	}
	if !strings.HasSuffix(sub.Key, "|tl=off|sw=4|su=2") {
		t.Errorf("sampled key = %q, want |tl=off|sw=4|su=2 suffix", sub.Key)
	}

	job := waitJobDone(t, ts, sub.ID)
	res := job.Result
	if res == nil || res.Sampled == nil {
		t.Fatalf("sampled job result = %+v, want a sampled block", res)
	}
	sr := res.Sampled
	if sr.Windows != 4 || sr.Measured < 1 || sr.Warmed != runner.DefaultSampleWarmup {
		t.Errorf("sampled geometry = %+v", sr)
	}
	if sr.FastForwarded+sr.Warmed+sr.Measured != 160/4 {
		t.Errorf("window split %d+%d+%d != %d", sr.FastForwarded, sr.Warmed, sr.Measured, 160/4)
	}
	for _, name := range []string{"instructions", "cycles", "cpi", "us_per_req"} {
		m, ok := sr.Metrics[name]
		if !ok || m.Mean <= 0 || m.CI95 < 0 {
			t.Errorf("metric %s = %+v, want present with positive mean", name, m)
		}
	}
	if res.Instructions == 0 {
		t.Error("sampled result carries no excerpt counters")
	}

	// The timeline endpoint must explain itself: sampling forced
	// timeline_off, so the answer is the timeline-disabled 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("timeline status = %d, want 404", resp.StatusCode)
	}

	// An identical resubmission is a cache hit on the sampled entry;
	// the exact-job spec (no sampling) is a distinct job.
	re, code := postJob(t, ts,
		`{"workload":"memcached","config":"base","seed":3,"warm":5,"measure":160,"sample_windows":4}`)
	if code != http.StatusOK || re.ID != sub.ID {
		t.Errorf("resubmit = %+v status %d, want cached id %s", re, code, sub.ID)
	}
	ex, code := postJob(t, ts,
		`{"workload":"memcached","config":"base","seed":3,"warm":5,"measure":160}`)
	if code != http.StatusAccepted {
		t.Fatalf("exact submit status = %d, want 202 (distinct job)", code)
	}
	if ex.ID == sub.ID {
		t.Error("exact and sampled specs share an ID")
	}
	exact := waitJobDone(t, ts, ex.ID)
	if exact.Result == nil || exact.Result.Sampled != nil {
		t.Errorf("exact result = %+v, want no sampled block", exact.Result)
	}
}
