// Command dlsimd is a long-running simulation service: an HTTP JSON
// front end over the internal/runner job engine.  Clients submit
// simulation jobs (workload × config × seed), poll for typed results,
// and read pool/cache statistics; identical submissions are coalesced
// and served from the content-addressed result cache, so each
// distinct simulation runs at most once per process lifetime.
//
// The service is hardened for unattended operation: worker panics
// fail only the offending job (with the stack recorded), transient
// job failures retry with capped exponential backoff + jitter, a
// bounded admission queue sheds overload with 429 + Retry-After, and
// SIGINT/SIGTERM triggers a graceful drain — admission stops
// (/readyz goes 503), in-flight jobs finish up to -drain-timeout,
// and whatever remains is reported before exit.  Fault injection for
// testing is available via DLSIM_FAULTS (see internal/faultinject).
//
// The service is fully observable: every request carries a
// correlation ID (honoring an incoming X-Request-ID), request logs
// are structured JSON lines on stderr, GET /metrics exposes the
// runner/cache/simulation/HTTP instrument set in Prometheus text
// format, GET /v1/traces/{id} returns a job's phase-by-phase span
// tree, and -debug-addr starts an opt-in net/http/pprof listener on
// a separate port (never on the public address).
//
// Usage:
//
//	dlsimd [-addr :8344] [-workers N] [-job-timeout 5m] [-max-queue N]
//	       [-max-retained N] [-retries N] [-request-timeout 30s]
//	       [-drain-timeout 30s] [-trace-buffer N] [-debug-addr :8345]
//	       [-store-dir DIR] [-store-max-bytes N]
//	       [-metrics-history 5s] [-metrics-history-points N]
//	       [-cluster-self NAME -cluster-peers "a=URL,b=URL,..."]
//
// With -cluster-self set, the node joins a static sharded cluster
// (see internal/cluster and DESIGN.md §12): job and batch IDs are
// consistent-hash-routed to their owning replica, dead or flaky peers
// are routed around via health probes, per-peer circuit breakers and
// deterministic ring failover, and /readyz reports per-peer status.
// The member list comes from -cluster-peers or $DLSIM_CLUSTER_PEERS;
// every node must be configured with the same names.
//
// With -store-dir set, every completed result (and every completed
// batch's aggregate snapshot) is written through to a disk-backed
// content-addressed store (see internal/store): LRU eviction demotes
// results to disk instead of dropping them, lookups and submissions
// fall back to the store before recomputing, and a restarted process
// pointed at the same directory warm-starts — previously completed
// job IDs are served from disk with bit-identical counters.  The
// graceful-drain path flushes the store before exit, and 410 Gone is
// reserved for entries truly dropped (store disabled, failed jobs, or
// size-bound compaction victims).
//
// API:
//
//	POST /v1/jobs        submit a job; body {"workload":"apache",
//	                     "config":"enhanced","seed":1,"scale":0.5};
//	                     returns the job id (202, or 200 when coalesced;
//	                     429 + Retry-After when the queue is full)
//	GET  /v1/jobs/{id}   job state, attempts, and the result once done
//	                     (410 once the id is evicted by -max-retained;
//	                     404 for ids never seen or long forgotten)
//	POST /v1/batches     submit a sweep; body {"workload":"apache",
//	                     "configs":["base","enhanced"],"seeds":[1,2,3],
//	                     "scale":0.5}; expands to one deduplicated job
//	                     per (config, seed) cell — artifact-pool-backed,
//	                     so each workload generates once per seed and
//	                     each link product links once — and returns the
//	                     content-derived batch id (202, or 200 when the
//	                     identical sweep is already known)
//	GET  /v1/batches/{id} batch progress (total/queued/running/done/
//	                     failed), per-job states with each failed job's
//	                     error (partial failure is reported, not
//	                     hidden), and per-config aggregates over
//	                     completed jobs
//	GET  /v1/jobs/{id}/timeline  the job's phase-resolved counter
//	                     timeline: per-interval deltas of every
//	                     microarchitectural counter sampled during the
//	                     measure window (JSON, or CSV via ?format=csv /
//	                     Accept: text/csv); cluster-aware like any
//	                     result read
//	GET  /v1/traces/{id} the job's span tree: queued/attempt/backoff
//	                     phases with generate/link/warmup/measure steps
//	GET  /v1/stats       pool depth, cache hits/misses, retries/panics/
//	                     shed counters, job latency, and (in cluster
//	                     mode) per-peer forward/failover/hedge counts
//	GET  /v1/metrics/history  short-horizon time series of every scalar
//	                     instrument, snapshotted every -metrics-history
//	                     period into a bounded ring
//	GET  /metrics        Prometheus text exposition of all instruments
//	GET  /healthz        liveness (200 while the process serves)
//	GET  /readyz         readiness (503 once draining)
//
// All failure responses are structured JSON:
// {"error": "...", "code": N, "request_id": "..."}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// parsePeers parses a "name=url,name=url,..." member list.  The entry
// for self may omit "=url" ("a,b=http://...,c=http://..." is invalid
// for remote members but fine for self, whose URL is never dialed).
func parsePeers(list string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, ent := range strings.Split(list, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, url, _ := strings.Cut(ent, "=")
		if name == "" {
			return nil, fmt.Errorf("cluster peer %q: empty name", ent)
		}
		peers = append(peers, cluster.Peer{Name: name, URL: url})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster peer list %q: no members", list)
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job simulation timeout (0 = none)")
	maxQueue := flag.Int("max-queue", 256, "admission-queue bound; full queue sheds with 429 (0 = unbounded)")
	maxRetained := flag.Int("max-retained", 0, "completed jobs retained in the result cache; LRU-evicted beyond this, evicted IDs answer 410 (0 = default 4096, negative = unbounded)")
	maxBatches := flag.Int("max-batches", 0, "batch handles retained for lookup by ID; LRU-evicted beyond this, jobs stay addressable (0 = default 256, negative = unbounded)")
	retries := flag.Int("retries", 0, "max execution attempts per job incl. the first (0 = default 3, 1 = no retry)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-HTTP-request timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	traceBuffer := flag.Int("trace-buffer", 0, "recent job traces to retain (0 = default 512, negative disables tracing)")
	debugAddr := flag.String("debug-addr", "", "optional net/http/pprof listen address (e.g. :8345); empty disables")
	storeDir := flag.String("store-dir", "", "directory for the disk-backed result store; completed results persist there and warm-start the next process (empty disables persistence)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "on-disk size bound of the result store; exceeding it compacts and drops the oldest entries (0 = default 256 MiB, negative = unbounded)")
	clusterSelf := flag.String("cluster-self", "", "this node's name in the cluster member list; empty disables cluster mode")
	clusterPeers := flag.String("cluster-peers", "", `static member list "name=url,name=url,..." (self may omit =url); falls back to $DLSIM_CLUSTER_PEERS`)
	clusterProbe := flag.Duration("cluster-probe-interval", time.Second, "health-probe period for peers")
	clusterFailThreshold := flag.Int("cluster-fail-threshold", 3, "consecutive probe failures that mark a peer down")
	clusterBreakerThreshold := flag.Int("cluster-breaker-threshold", 5, "consecutive forward failures that open a peer's circuit breaker")
	clusterBreakerCooldown := flag.Duration("cluster-breaker-cooldown", 2*time.Second, "open-breaker cooldown before a half-open trial")
	clusterForwardTimeout := flag.Duration("cluster-forward-timeout", 5*time.Second, "per-hop timeout for forwarded requests")
	clusterHedge := flag.Duration("cluster-hedge-delay", 0, "hedged-GET delay: race the next replica if the owner hasn't answered a result read in this long (0 disables)")
	clusterRetries := flag.Int("cluster-retries", 0, "max forward attempts per peer before failing over (0 = default 2)")
	historyInterval := flag.Duration("metrics-history", telemetry.DefaultHistoryInterval, "metrics-history snapshot period behind GET /v1/metrics/history (0 disables the ring)")
	historyPoints := flag.Int("metrics-history-points", 0, "metrics-history ring capacity in snapshots (0 = default 720: one hour at the default period)")
	flag.Parse()

	// Zero flags: every line the server emits is a self-contained JSON
	// object carrying its own timestamp.
	logger := log.New(os.Stderr, "", 0)

	// The registry and trace ring are shared between the store and
	// the runner so GET /metrics is one scrape over both tiers and
	// the store's open/replay span is addressable at
	// /v1/traces/store-open like any job trace.
	reg := telemetry.NewRegistry()
	var tracer *telemetry.Tracer
	if *traceBuffer >= 0 {
		tracer = telemetry.NewTracer(*traceBuffer)
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{
			MaxBytes: *storeMaxBytes,
			Metrics:  reg,
			Tracer:   tracer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlsimd:", err)
			os.Exit(1)
		}
		defer st.Close()
		ss := st.Stats()
		fmt.Printf("dlsimd: result store %s (%d entries, %d segments, %d bytes, %d torn records recovered)\n",
			*storeDir, ss.Entries, ss.Segments, ss.Bytes, ss.TornRecovered)
	}

	pool := runner.New(runner.Options{
		Workers:       *workers,
		JobTimeout:    *jobTimeout,
		MaxQueue:      *maxQueue,
		MaxRetained:   *maxRetained,
		MaxBatches:    *maxBatches,
		Retry:         runner.RetryPolicy{MaxAttempts: *retries},
		TraceCapacity: *traceBuffer,
		Metrics:       reg,
		Tracer:        tracer,
		Store:         st,
	})
	defer pool.Close()

	var cl *cluster.Cluster
	if *clusterSelf != "" {
		list := *clusterPeers
		if list == "" {
			list = os.Getenv("DLSIM_CLUSTER_PEERS")
		}
		peers, err := parsePeers(list)
		if err == nil {
			cl, err = cluster.New(cluster.Options{
				Self:             *clusterSelf,
				Peers:            peers,
				ProbeInterval:    *clusterProbe,
				FailThreshold:    *clusterFailThreshold,
				BreakerThreshold: *clusterBreakerThreshold,
				BreakerCooldown:  *clusterBreakerCooldown,
				ForwardTimeout:   *clusterForwardTimeout,
				HedgeDelay:       *clusterHedge,
				Retry:            cluster.RetryPolicy{MaxAttempts: *clusterRetries},
				Metrics:          reg,
				Tracer:           tracer,
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlsimd:", err)
			os.Exit(1)
		}
		defer cl.Close()
		fmt.Printf("dlsimd: cluster mode, self=%s, %d members\n", *clusterSelf, len(peers))
	}

	var hist *telemetry.History
	if *historyInterval > 0 {
		hist = telemetry.NewHistory(reg, *historyPoints, *historyInterval)
		hist.Start()
		defer hist.Close()
	}

	api := newServer(pool, serverConfig{
		logger:         logger,
		requestTimeout: *requestTimeout,
		retryAfter:     time.Second,
		cluster:        cl,
		history:        hist,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		// pprof goes on its own mux and listener so profiling endpoints
		// are never reachable through the public API address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			dbgSrv := &http.Server{
				Addr:              *debugAddr,
				Handler:           dbg,
				ReadHeaderTimeout: 10 * time.Second,
			}
			api.logJSON("pprof", map[string]any{"addr": *debugAddr})
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				api.logJSON("pprof listener failed", map[string]any{"error": err.Error()})
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		api.logJSON("shutdown", map[string]any{"drain_timeout": drainTimeout.String()})
		api.startDrain()
		deadline, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain in-flight simulations first (admission is already
		// off), then flush the result store — every drained job's
		// result was written through before its gauges dropped, so a
		// clean drain plus this flush makes the whole run durable —
		// and finally stop the HTTP listener within the same budget.
		if abandoned := pool.Drain(deadline); abandoned > 0 {
			api.logJSON("drain deadline hit", map[string]any{"abandoned": abandoned})
		} else {
			api.logJSON("drained", nil)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				api.logJSON("store flush failed", map[string]any{"error": err.Error()})
			} else {
				api.logJSON("store flushed", map[string]any{"entries": st.Stats().Entries})
			}
		}
		_ = srv.Shutdown(deadline)
	}()

	fmt.Printf("dlsimd: serving on %s (workers=%d, max-queue=%d)\n", *addr, pool.Workers(), *maxQueue)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dlsimd:", err)
		os.Exit(1)
	}
}
