// Command dlsimd is a long-running simulation service: an HTTP JSON
// front end over the internal/runner job engine.  Clients submit
// simulation jobs (workload × config × seed), poll for typed results,
// and read pool/cache statistics; identical submissions are coalesced
// and served from the content-addressed result cache, so each
// distinct simulation runs at most once per process lifetime.
//
// Usage:
//
//	dlsimd [-addr :8344] [-workers N] [-job-timeout 5m]
//
// API:
//
//	POST /v1/jobs      submit a job; body {"workload":"apache",
//	                   "config":"enhanced","seed":1,"scale":0.5};
//	                   returns the job id (202, or 200 when coalesced)
//	GET  /v1/jobs/{id} job state, and the result once done
//	GET  /v1/stats     pool depth, cache hits/misses, job latency
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/runner"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job simulation timeout (0 = none)")
	flag.Parse()

	pool := runner.New(runner.Options{Workers: *workers, JobTimeout: *jobTimeout})
	defer pool.Close()

	srv := &http.Server{Addr: *addr, Handler: newServer(pool)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("dlsimd: serving on %s (workers=%d)\n", *addr, pool.Workers())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dlsimd:", err)
		os.Exit(1)
	}
}
