package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/runner"
)

func newTestServer(t *testing.T) (*httptest.Server, *runner.Runner) {
	t.Helper()
	return newTestServerOpts(t, runner.Options{Workers: 2}, serverConfig{})
}

func newTestServerOpts(t *testing.T, opts runner.Options, cfg serverConfig) (*httptest.Server, *runner.Runner) {
	t.Helper()
	pool := runner.New(opts)
	ts := httptest.NewServer(newServer(pool, cfg))
	t.Cleanup(func() { ts.Close(); pool.Close() })
	return ts, pool
}

func postJob(t *testing.T, ts *httptest.Server, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out submitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) (jobResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestEndToEndJob drives a job through the HTTP API: submit, poll to
// completion, check the typed result, then resubmit and observe the
// cache hit in /v1/stats.
func TestEndToEndJob(t *testing.T) {
	ts, _ := newTestServer(t)
	const spec = `{"workload":"memcached","config":"enhanced","seed":9,"warm":5,"measure":25}`

	sub, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if sub.ID == "" || sub.Cached {
		t.Fatalf("submit = %+v, want fresh job with id", sub)
	}

	// Poll until done.
	var job jobResponse
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var code int
		job, code = getJob(t, ts, sub.ID)
		if code != http.StatusOK {
			t.Fatalf("poll status = %d", code)
		}
		if job.State == runner.StateDone || job.State == runner.StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after deadline", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.State != runner.StateDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	res := job.Result
	if res == nil {
		t.Fatal("done job has no result")
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Errorf("empty counters: %+v", res)
	}
	if res.DistinctTrampolines == 0 {
		t.Error("no trampolines recorded")
	}
	got := 0
	for class, c := range res.Classes {
		if c.N == 0 || c.MeanUS <= 0 || c.P99US < c.P50US {
			t.Errorf("class %s: inconsistent latency summary %+v", class, c)
		}
		got += c.N
	}
	if got != 25 {
		t.Errorf("measured requests = %d, want 25", got)
	}

	// Identical resubmission coalesces onto the same job.
	sub2, code := postJob(t, ts, spec)
	if code != http.StatusOK {
		t.Errorf("resubmit status = %d, want 200", code)
	}
	if !sub2.Cached || sub2.ID != sub.ID {
		t.Errorf("resubmit = %+v, want cached with same id %s", sub2, sub.ID)
	}

	// Stats reflect the one simulation and one cache hit.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("stats misses=%d hits=%d, want 1/1", st.CacheMisses, st.CacheHits)
	}
	if st.Completed != 1 || st.JobP50MS <= 0 {
		t.Errorf("stats completed=%d p50=%.2f, want 1 and > 0", st.Completed, st.JobP50MS)
	}
	if len(st.Workloads) != len(runner.Workloads) {
		t.Errorf("stats workloads = %v, want all %d registered", st.Workloads, len(runner.Workloads))
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []string{
		`{"workload":"nginx","config":"base","seed":1}`,
		`{"workload":"apache","config":"warp","seed":1}`,
		`{"workload":"apache","config":"base","bogus":true}`,
		`not json`,
	}
	for _, body := range cases {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit %q: status = %d, want 400", body, code)
		}
	}
}

func TestUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t)
	if _, code := getJob(t, ts, "deadbeef"); code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", code)
	}
}

// TestEvictedJobAnswers410 pins the HTTP contract of -max-retained:
// an ID evicted from the result cache answers 410 Gone (distinct from
// the 404 of a never-seen ID), and resubmitting the evicted spec
// recomputes under the same content-derived ID.
func TestEvictedJobAnswers410(t *testing.T) {
	ts, _ := newTestServerOpts(t, runner.Options{Workers: 1, MaxRetained: 1}, serverConfig{})
	specA := `{"workload":"memcached","config":"base","seed":1,"warm":5,"measure":25}`
	specB := `{"workload":"memcached","config":"base","seed":2,"warm":5,"measure":25}`

	waitDone := func(id string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Minute)
		for {
			job, code := getJob(t, ts, id)
			if code == http.StatusOK && job.State == "done" {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s not done (last status %d)", id, code)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	a, code := postJob(t, ts, specA)
	if code != http.StatusAccepted {
		t.Fatalf("submit A status = %d, want 202", code)
	}
	waitDone(a.ID)
	b, _ := postJob(t, ts, specB)
	waitDone(b.ID)

	// B's completion evicted A (capacity 1).
	if _, code := getJob(t, ts, a.ID); code != http.StatusGone {
		t.Fatalf("GET evicted job = %d, want 410", code)
	}
	// An ID the server has never seen stays a plain 404.
	if _, code := getJob(t, ts, "feedfacecafebeef"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", code)
	}

	// Resubmitting the evicted spec recomputes under the same ID,
	// which is then reachable again.
	re, code := postJob(t, ts, specA)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit A status = %d, want 202 (recompute)", code)
	}
	if re.ID != a.ID {
		t.Fatalf("recomputed ID %s != original %s", re.ID, a.ID)
	}
	waitDone(a.ID)
}
