package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/runner"
)

// chaosClient drives the cluster like an external caller under
// failure: it retries on transport errors and retryable statuses,
// resubmits work when told to, and asserts the cluster's core promise
// on every response it sees — no 5xx escapes unless the cluster
// actually attempted a failover first.
type chaosClient struct {
	t     *testing.T
	front *testNode
}

// do issues one request, enforcing the no-unexcused-5xx invariant.
// It returns (status, headers, body, ok); ok=false means a transport
// error (connection refused/reset), which callers treat as retryable.
func (c *chaosClient) do(method, path string, body []byte) (int, http.Header, []byte, bool) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.front.url+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, false
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, false
	}
	if resp.StatusCode >= 500 && resp.Header.Get(cluster.FailoverHeader) == "" {
		c.t.Fatalf("chaos invariant violated: %s %s answered %d without a failover attempt (body %s)",
			method, path, resp.StatusCode, b)
	}
	return resp.StatusCode, resp.Header, b, true
}

// runSweep submits the sweep and polls it to completion, resubmitting
// whenever the cluster loses the batch (owner death answers 503 until
// a resubmission recomputes it on a survivor).  It returns the final
// completed status.
func (c *chaosClient) runSweep(sweep []byte, disrupt func(st runner.BatchStatus)) runner.BatchStatus {
	c.t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	var id string
	submit := func() {
		for {
			code, _, body, ok := c.do(http.MethodPost, "/v1/batches", sweep)
			if ok && (code == http.StatusOK || code == http.StatusAccepted) {
				var sub batchSubmitResponse
				if err := json.Unmarshal(body, &sub); err != nil {
					c.t.Fatalf("decode batch submit: %v (%s)", err, body)
				}
				if id != "" && id != sub.ID {
					c.t.Fatalf("content-derived batch ID changed across resubmits: %s then %s", id, sub.ID)
				}
				id = sub.ID
				return
			}
			if time.Now().After(deadline) {
				c.t.Fatalf("batch submit never accepted (last code %d)", code)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	submit()
	for {
		code, _, body, ok := c.do(http.MethodGet, "/v1/batches/"+id, nil)
		switch {
		case !ok:
			// Transport-level failure: the front died or dropped the
			// connection; plain retry.
		case code == http.StatusOK:
			var st runner.BatchStatus
			if err := json.Unmarshal(body, &st); err != nil {
				c.t.Fatalf("decode batch status: %v (%s)", err, body)
			}
			if disrupt != nil {
				disrupt(st)
			}
			if st.Completed {
				return st
			}
		case code == http.StatusServiceUnavailable, code == http.StatusTooManyRequests:
			// The owner is unreachable (failed-over local miss) or
			// admission shed the forward; resubmitting recomputes the
			// batch on a surviving replica under the same ID.
			submit()
		case code == http.StatusNotFound, code == http.StatusGone:
			// A failover landed the poll on a replica that never saw
			// the batch.  The ID is still valid cluster-wide: resubmit.
			submit()
		default:
			c.t.Fatalf("batch poll = %d (%s)", code, body)
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("batch never completed (last code %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// aggregatesEqual compares per-config aggregates bit-for-bit on every
// deterministic field.  SetupMS/MeasMS are wall-clock and excluded —
// they measure this machine, not the simulated one.
func aggregatesEqual(t *testing.T, want, got []runner.BatchAggregate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("aggregate count %d != baseline %d\n  baseline %+v\n  cluster  %+v", len(got), len(want), want, got)
	}
	index := make(map[runner.ConfigKind]runner.BatchAggregate, len(want))
	for _, a := range want {
		index[a.Config] = a
	}
	for _, g := range got {
		w, ok := index[g.Config]
		if !ok {
			t.Fatalf("config %q in cluster aggregates but not baseline", g.Config)
		}
		if g.Jobs != w.Jobs ||
			math.Float64bits(g.MeanCPI) != math.Float64bits(w.MeanCPI) ||
			math.Float64bits(g.MeanUS) != math.Float64bits(w.MeanUS) ||
			math.Float64bits(g.P99US) != math.Float64bits(w.P99US) ||
			math.Float64bits(g.TrampPKI) != math.Float64bits(w.TrampPKI) {
			t.Fatalf("config %q aggregates diverge from single-node baseline:\n  baseline %+v\n  cluster  %+v", g.Config, w, g)
		}
	}
}

// TestChaosKillAndFaultsPreserveDeterminism is the chaos suite: a
// 3-node loopback cluster runs a sweep while the forwarding path
// takes injected faults (error, then delay, then hang) and the batch
// owner is hard-killed mid-batch.  The surviving cluster must
// converge to per-config aggregates bit-identical to a single
// unclustered node, with failovers recorded and never a bare 5xx.
func TestChaosKillAndFaultsPreserveDeterminism(t *testing.T) {
	leakcheck.Check(t)
	sweepJSON := []byte(`{"workload":"apache","configs":["base","enhanced"],"seeds":[1,2,3],"warm":5,"measure":40}`)

	// Baseline: the same sweep on one unclustered node.
	base, pool := newTestServer(t)
	resp, err := http.Post(base.URL+"/v1/batches", "application/json", bytes.NewReader(sweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	var baseSub batchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&baseSub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var baseline runner.BatchStatus
	for deadline := time.Now().Add(2 * time.Minute); ; {
		b, ok := pool.Batch(baseSub.ID)
		if !ok {
			t.Fatalf("baseline batch %s vanished", baseSub.ID)
		}
		baseline = b.Status()
		if baseline.Completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("baseline batch never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if baseline.Failed != 0 || baseline.Done != 6 {
		t.Fatalf("baseline batch done=%d failed=%d, want 6/0", baseline.Done, baseline.Failed)
	}

	// Chaos phase.  Fault injection starts in error mode on the
	// forwarding client; the disrupt callback escalates to delay and
	// hang modes and hard-kills the batch owner once work is running.
	faultinject.Enable("cluster.forward", faultinject.PointConfig{
		Mode: faultinject.Error, Prob: 0.3, Count: 8,
	})
	t.Cleanup(faultinject.Reset)

	h := startCluster(t, 3, func(i int, co *cluster.Options, ro *runner.Options) {
		// Hangs must resolve quickly: the per-hop timeout is the only
		// thing that unblocks a hung forward.
		co.ForwardTimeout = 300 * time.Millisecond
		co.HedgeDelay = 50 * time.Millisecond
	})

	// Compute the batch ID up front so the kill targets the owner.
	var sweep runner.SweepSpec
	if err := json.Unmarshal(sweepJSON, &sweep); err != nil {
		t.Fatal(err)
	}
	batchID, err := sweep.ID()
	if err != nil {
		t.Fatal(err)
	}
	owner := h.ownerOf(batchID)
	front := h.nonOwnerOf(batchID)
	client := &chaosClient{t: t, front: front}

	phase := 0
	final := client.runSweep(sweepJSON, func(st runner.BatchStatus) {
		switch {
		case phase == 0 && st.Done+st.Running >= 1:
			// Hard kill mid-batch: the owner drops off the network with
			// jobs in flight.  Content-derived IDs make the survivors'
			// recompute bit-identical.  Faults escalate to delay mode.
			phase = 1
			faultinject.Enable("cluster.forward", faultinject.PointConfig{
				Mode: faultinject.Delay, Delay: 25 * time.Millisecond, Prob: 0.4, Count: 8,
			})
			owner.kill()
		case phase == 1 && st.Done >= 3:
			// Recompute is past halfway on a survivor: last escalation,
			// hangs that only the per-hop timeout can unblock.
			phase = 2
			faultinject.Enable("cluster.forward", faultinject.PointConfig{
				Mode: faultinject.Hang, Prob: 0.2, Count: 3,
			})
		}
	})

	faultinject.Disable("cluster.forward")

	if final.Failed != 0 || final.Done != 6 {
		t.Fatalf("chaos batch done=%d failed=%d, want 6/0", final.Done, final.Failed)
	}
	aggregatesEqual(t, baseline.Aggregate, final.Aggregate)

	if h.failovers() == 0 {
		t.Fatal("chaos run recorded no failovers despite a dead owner")
	}

	// The failovers are also on the public scrape of a survivor.
	code, _, metrics, ok := client.do(http.MethodGet, "/metrics", nil)
	if !ok || code != http.StatusOK {
		t.Fatalf("metrics scrape = %d ok=%v", code, ok)
	}
	var failoverSeries float64
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "dlsim_cluster_failovers_total") {
			if _, err := fmt.Sscanf(line, "dlsim_cluster_failovers_total %v", &failoverSeries); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if failoverSeries == 0 {
		t.Fatalf("dlsim_cluster_failovers_total is 0 on the front node's scrape:\n%s", metrics)
	}
}

// TestChaosInjectedForwardErrorsRetryTransparently arms only the
// error mode at a high rate with no kills: every client-visible
// response must still be a success (the per-peer retry and ring
// failover absorb the faults), proving injected forward errors never
// leak to callers as long as some replica can serve.
func TestChaosInjectedForwardErrorsRetryTransparently(t *testing.T) {
	leakcheck.Check(t)
	faultinject.Enable("cluster.forward", faultinject.PointConfig{
		Mode: faultinject.Error, Prob: 0.5, Count: 20,
	})
	t.Cleanup(faultinject.Reset)

	h := startCluster(t, 3, nil)
	client := &chaosClient{t: t, front: h.nodes[0]}

	spec := []byte(`{"workload":"firefox","config":"enhanced","seed":21,"warm":3,"measure":30}`)
	var id string
	for attempt := 0; ; attempt++ {
		code, _, body, ok := client.do(http.MethodPost, "/v1/jobs", spec)
		if ok && (code == http.StatusAccepted || code == http.StatusOK) {
			var sub submitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Fatal(err)
			}
			id = sub.ID
			break
		}
		if attempt > 200 {
			t.Fatalf("submit never succeeded under injected errors (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	deadline := time.Now().Add(time.Minute)
	for {
		code, _, body, ok := client.do(http.MethodGet, "/v1/jobs/"+id, nil)
		if ok && code == http.StatusOK {
			var job jobResponse
			if err := json.Unmarshal(body, &job); err != nil {
				t.Fatal(err)
			}
			if job.State == runner.StateDone {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed under injected errors (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if faultinject.Injections("cluster.forward") == 0 {
		t.Fatal("fault point never fired: the test exercised nothing")
	}
}
