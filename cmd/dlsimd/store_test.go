package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/store"
)

// pollJobDone polls GET /v1/jobs/{id} until the job is done.
func pollJobDone(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		job, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if job.State == runner.StateDone {
			return job
		}
		if job.State == runner.StateFailed {
			t.Fatalf("job %s failed: %s", id, job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done in time (state %s)", id, job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHTTPRestartWarmStart is the end-to-end restart story: run a job
// in one server generation, tear everything down the way the drain
// path does, start a second generation over the same store directory,
// and read the identical result back without resubmitting.
func TestHTTPRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	const spec = `{"workload":"memcached","config":"enhanced","seed":41,"warm":5,"measure":25}`

	// Generation 1: compute the job, then shut down cleanly —
	// pool first, store flush second, exactly like main's drain.
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool1 := runner.New(runner.Options{Workers: 2, Store: st1})
	ts1 := httptest.NewServer(newServer(pool1, serverConfig{}))
	sub, code := postJob(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	gen1 := pollJobDone(t, ts1, sub.ID)
	ts1.Close()
	pool1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: same directory, fresh process state.  The job ID
	// from generation 1 must answer 200 with the identical result —
	// no resubmission, no recomputation.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts2, pool2 := newTestServerOpts(t, runner.Options{Workers: 2, Store: st2}, serverConfig{})
	t.Cleanup(func() { st2.Close() })
	gen2, code := getJob(t, ts2, sub.ID)
	if code != http.StatusOK {
		t.Fatalf("warm-start GET = %d, want 200", code)
	}
	if gen2.State != runner.StateDone || gen2.Result == nil {
		t.Fatalf("warm-start job = %+v, want done with result", gen2)
	}
	r1, r2 := gen1.Result, gen2.Result
	if r1.Instructions != r2.Instructions || r1.Cycles != r2.Cycles ||
		r1.TrampInstrs != r2.TrampInstrs || r1.TrampCalls != r2.TrampCalls ||
		r1.TrampSkips != r2.TrampSkips || r1.Resolutions != r2.Resolutions {
		t.Errorf("counters drifted across restart:\ngen1: %+v\ngen2: %+v", r1, r2)
	}
	if r1.PKI != r2.PKI {
		t.Errorf("PKI drifted across restart:\ngen1: %+v\ngen2: %+v", r1.PKI, r2.PKI)
	}
	if r1.DistinctTrampolines != r2.DistinctTrampolines || r1.LibCalls != r2.LibCalls {
		t.Errorf("trampoline summary drifted: gen1 %d/%d, gen2 %d/%d",
			r1.DistinctTrampolines, r1.LibCalls, r2.DistinctTrampolines, r2.LibCalls)
	}

	// Resubmitting the identical spec is a cache hit, not new work.
	resub, code := postJob(t, ts2, spec)
	if code != http.StatusOK || !resub.Cached {
		t.Fatalf("resubmit = %+v (%d), want cached 200", resub, code)
	}
	if runnerStats := pool2.Stats(); runnerStats.Completed != 0 {
		t.Errorf("generation 2 computed %d jobs; warm start should compute none", runnerStats.Completed)
	}

	// /v1/stats exposes the disk tier.
	resp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Store *storeStatsJSON `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil {
		t.Fatal("/v1/stats omits the store tier while a store is attached")
	}
	if stats.Store.Entries == 0 || stats.Store.Hits == 0 {
		t.Errorf("store stats = %+v, want entries and hits after a warm start", stats.Store)
	}
}

// TestBatchEvicted410 pins the batch retention parity satellite: a
// batch handle dropped by -max-batches answers 410 Gone (like an
// evicted job), while a never-seen batch ID stays 404.
func TestBatchEvicted410(t *testing.T) {
	ts, _ := newTestServerOpts(t, runner.Options{Workers: 2, MaxBatches: 1}, serverConfig{})

	subA, code := postBatch(t, ts, `{"workload":"memcached","configs":["base"],"seeds":[61],"warm":5,"measure":25}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch A submit = %d", code)
	}
	// Batch B displaces A from the single retention slot.
	subB, code := postBatch(t, ts, `{"workload":"memcached","configs":["base"],"seeds":[62],"warm":5,"measure":25}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch B submit = %d", code)
	}
	if _, code := getBatch(t, ts, subB.ID); code != http.StatusOK {
		t.Fatalf("batch B lookup = %d, want 200", code)
	}
	if _, code := getBatch(t, ts, subA.ID); code != http.StatusGone {
		t.Fatalf("evicted batch A lookup = %d, want 410", code)
	}
	if _, code := getBatch(t, ts, "b0123456789abcdef"); code != http.StatusNotFound {
		t.Fatalf("unknown batch lookup = %d, want 404", code)
	}
}

// TestBatchRestoredFromStore: with a store attached, an evicted
// batch's final snapshot remains readable — the store tier turns the
// 410 into a 200 serving the persisted aggregate.
func TestBatchRestoredFromStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts, _ := newTestServerOpts(t, runner.Options{Workers: 2, MaxBatches: 1, Store: st}, serverConfig{})

	sub, code := postBatch(t, ts, `{"workload":"memcached","configs":["base","enhanced"],"seeds":[71],"warm":5,"measure":25}`)
	if code != http.StatusAccepted {
		t.Fatalf("batch submit = %d", code)
	}
	// Wait for completion, then for the async snapshot persist.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		status, code := getBatch(t, ts, sub.ID)
		if code != http.StatusOK {
			t.Fatalf("batch poll = %d", code)
		}
		if status.Completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for !st.Has(sub.ID) {
		if time.Now().After(deadline) {
			t.Fatal("batch snapshot never persisted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Displace the live handle; the store keeps the batch readable.
	if _, code := postBatch(t, ts, `{"workload":"memcached","configs":["base"],"seeds":[72],"warm":5,"measure":25}`); code != http.StatusAccepted {
		t.Fatalf("displacing batch submit = %d", code)
	}
	status, code := getBatch(t, ts, sub.ID)
	if code != http.StatusOK {
		t.Fatalf("restored batch lookup = %d, want 200 from the store tier", code)
	}
	if !status.Completed || status.Total != 2 || status.Done != 2 {
		t.Fatalf("restored batch status = %+v, want completed 2/2", status)
	}
	if len(status.Aggregate) == 0 {
		t.Error("restored batch lost its per-config aggregates")
	}
}
