package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/leakcheck"
	"repro/internal/runner"
)

// testNode is one in-process cluster member: its own runner pool,
// cluster engine and HTTP listener on a loopback port.
type testNode struct {
	name string
	url  string
	srv  *http.Server
	pool *runner.Runner
	cl   *cluster.Cluster

	killed bool
}

// kill simulates a hard node death at the network level: the listener
// and its connections drop and the health prober stops, but the pool
// is left to the test cleanup (a dead process doesn't gracefully
// drain its jobs either).
func (n *testNode) kill() {
	if n.killed {
		return
	}
	n.killed = true
	_ = n.srv.Close()
	n.cl.Close()
}

// clusterHarness is an in-process N-node loopback cluster.
type clusterHarness struct {
	nodes []*testNode
}

// close kills every node and its pool.  Idempotent (kill guards
// itself and runner.Close tolerates repeats), so benchmarks can tear
// down per iteration under the same cleanup registration.
func (h *clusterHarness) close() {
	for _, node := range h.nodes {
		node.kill()
		node.pool.Close()
	}
}

// startCluster boots n dlsimd nodes on loopback ports, each fronting
// its own pool, all sharing one static member list.  Knobs are tuned
// for test speed: fast probes, fast retries, short breaker cooldown.
// mutate, when non-nil, adjusts each node's options before start.
func startCluster(t testing.TB, n int, mutate func(i int, co *cluster.Options, ro *runner.Options)) *clusterHarness {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = cluster.Peer{
			Name: fmt.Sprintf("n%d", i),
			URL:  "http://" + ln.Addr().String(),
		}
	}

	h := &clusterHarness{}
	for i := range lns {
		co := cluster.Options{
			Self:             peers[i].Name,
			Peers:            peers,
			ProbeInterval:    25 * time.Millisecond,
			ProbeTimeout:     time.Second,
			FailThreshold:    2,
			BreakerThreshold: 4,
			BreakerCooldown:  100 * time.Millisecond,
			ForwardTimeout:   2 * time.Second,
			Retry: cluster.RetryPolicy{
				MaxAttempts: 2,
				BaseDelay:   time.Millisecond,
				MaxDelay:    5 * time.Millisecond,
			},
		}
		ro := runner.Options{Workers: 2}
		if mutate != nil {
			mutate(i, &co, &ro)
		}
		pool := runner.New(ro)
		co.Metrics = pool.Metrics()
		cl, err := cluster.New(co)
		if err != nil {
			pool.Close()
			t.Fatal(err)
		}
		api := newServer(pool, serverConfig{cluster: cl})
		srv := &http.Server{Handler: api}
		node := &testNode{name: peers[i].Name, url: peers[i].URL, srv: srv, pool: pool, cl: cl}
		go func() { _ = srv.Serve(lns[i]) }()
		h.nodes = append(h.nodes, node)
	}
	t.Cleanup(h.close)
	return h
}

// ownerOf returns the harness node owning the ID.
func (h *clusterHarness) ownerOf(id string) *testNode {
	name := h.nodes[0].cl.Owner(id)
	for _, n := range h.nodes {
		if n.name == name {
			return n
		}
	}
	return nil
}

// nonOwnerOf returns a live node that does not own the ID.
func (h *clusterHarness) nonOwnerOf(id string) *testNode {
	name := h.nodes[0].cl.Owner(id)
	for _, n := range h.nodes {
		if n.name != name && !n.killed {
			return n
		}
	}
	return nil
}

// failovers sums the failover counters across live nodes.
func (h *clusterHarness) failovers() uint64 {
	var sum uint64
	for _, n := range h.nodes {
		if !n.killed {
			sum += n.cl.Failovers()
		}
	}
	return sum
}

// httpDo issues one request and decodes the JSON body into out (when
// non-nil and the status is < 300), returning status and headers.
func httpDo(t testing.TB, method, url string, body []byte, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(b, out); err != nil {
			t.Fatalf("decode %s %s: %v (body %q)", method, url, err, b)
		}
	}
	return resp.StatusCode, resp.Header
}

// pollJob polls a job through the given node until it is done.
func pollJob(t testing.TB, node *testNode, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		var job jobResponse
		code, _ := httpDo(t, http.MethodGet, node.url+"/v1/jobs/"+id, nil, &job)
		if code == http.StatusOK && (job.State == runner.StateDone || job.State == runner.StateFailed) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done before deadline (last code %d, state %q)", id, code, job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRoutesToOwnerAndDedups submits the same spec through
// every node and checks that routing by content-derived ID lands all
// copies on one owner: one fresh 202, then cache hits (200) no matter
// which node fronted the request, and result reads forward to the
// owner from anywhere.
func TestClusterRoutesToOwnerAndDedups(t *testing.T) {
	leakcheck.Check(t)
	h := startCluster(t, 3, nil)
	spec := []byte(`{"workload":"apache","config":"enhanced","seed":7,"warm":3,"measure":20}`)

	var first submitResponse
	code, hdr := httpDo(t, http.MethodPost, h.nodes[0].url+"/v1/jobs", spec, &first)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	owner := h.nodes[0].cl.Owner(first.ID)
	if got := hdr.Get(cluster.NodeHeader); got != owner {
		t.Fatalf("submit served by %q, want ring owner %q", got, owner)
	}

	for _, n := range h.nodes {
		var dup submitResponse
		code, hdr := httpDo(t, http.MethodPost, n.url+"/v1/jobs", spec, &dup)
		if code != http.StatusOK || !dup.Cached || dup.ID != first.ID {
			t.Fatalf("resubmit via %s = %d %+v, want 200 cached id %s", n.name, code, dup, first.ID)
		}
		if got := hdr.Get(cluster.NodeHeader); got != owner {
			t.Fatalf("resubmit via %s served by %q, want %q", n.name, got, owner)
		}
	}

	// Reads from any node forward to the owner and agree bit-for-bit
	// on the deterministic counters.
	base := pollJob(t, h.nodes[0], first.ID)
	for _, n := range h.nodes[1:] {
		job := pollJob(t, n, first.ID)
		if job.Result == nil || base.Result == nil {
			t.Fatalf("missing result: base=%v node=%v", base.Result, job.Result)
		}
		if job.Result.Instructions != base.Result.Instructions ||
			job.Result.Cycles != base.Result.Cycles ||
			job.Result.TrampInstrs != base.Result.TrampInstrs {
			t.Fatalf("results diverge across nodes: %+v vs %+v", base.Result, job.Result)
		}
	}
}

// TestClusterBatchRouting checks sweep submissions route by their
// content-derived batch ID and the batch is pollable from any node.
func TestClusterBatchRouting(t *testing.T) {
	leakcheck.Check(t)
	h := startCluster(t, 3, nil)
	sweep := []byte(`{"workload":"memcached","configs":["base","enhanced"],"seeds":[1,2],"warm":3,"measure":25}`)

	var sub batchSubmitResponse
	code, hdr := httpDo(t, http.MethodPost, h.nodes[1].url+"/v1/batches", sweep, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("batch submit = %d, want 202", code)
	}
	owner := h.nodes[0].cl.Owner(sub.ID)
	if got := hdr.Get(cluster.NodeHeader); got != owner {
		t.Fatalf("batch served by %q, want owner %q", got, owner)
	}
	if sub.Total != 4 {
		t.Fatalf("batch total = %d, want 4", sub.Total)
	}

	// Identical sweep through another node coalesces.
	var dup batchSubmitResponse
	code, _ = httpDo(t, http.MethodPost, h.nodes[2].url+"/v1/batches", sweep, &dup)
	if code != http.StatusOK || !dup.Cached || dup.ID != sub.ID {
		t.Fatalf("duplicate sweep = %d %+v, want 200 cached id %s", code, dup, sub.ID)
	}

	// Progress polls forward from every node to the one copy.
	deadline := time.Now().Add(time.Minute)
	for {
		var st runner.BatchStatus
		code, _ := httpDo(t, http.MethodGet, h.nodes[0].url+"/v1/batches/"+sub.ID, nil, &st)
		if code != http.StatusOK {
			t.Fatalf("batch poll = %d", code)
		}
		if st.Completed {
			if st.Done != 4 || st.Failed != 0 {
				t.Fatalf("batch finished %d done %d failed, want 4/0", st.Done, st.Failed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch not completed before deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterReadyzReportsDegraded kills one node and watches the
// others' /readyz flip from ready to degraded with per-peer detail.
func TestClusterReadyzReportsDegraded(t *testing.T) {
	leakcheck.Check(t)
	h := startCluster(t, 3, nil)

	var ready readyzResponse
	code, _ := httpDo(t, http.MethodGet, h.nodes[0].url+"/readyz", nil, &ready)
	if code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz = %d %+v, want 200 ready", code, ready)
	}
	if ready.Cluster == nil || len(ready.Cluster.Peers) != 3 {
		t.Fatalf("readyz cluster = %+v, want 3 peers", ready.Cluster)
	}

	h.nodes[2].kill()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var r readyzResponse
		code, _ := httpDo(t, http.MethodGet, h.nodes[0].url+"/readyz", nil, &r)
		if code != http.StatusOK {
			t.Fatalf("readyz = %d, want 200 (degraded is still servable)", code)
		}
		if r.Status == "degraded" && r.Cluster != nil && r.Cluster.Degraded {
			var down *cluster.PeerStatus
			for i := range r.Cluster.Peers {
				if r.Cluster.Peers[i].Name == "n2" {
					down = &r.Cluster.Peers[i]
				}
			}
			if down == nil || down.Healthy {
				t.Fatalf("degraded readyz misses dead peer: %+v", r.Cluster)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported degraded: %+v", r)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterFailoverRecomputesOnDeadOwner kills a job's owner after
// completion and checks the failure story end to end: the first
// failed-over read answers 503 + Retry-After (the owner may still
// hold the result — 404 would overclaim), a resubmission recomputes
// on a surviving replica, and the recomputed counters are
// bit-identical to the original.
func TestClusterFailoverRecomputesOnDeadOwner(t *testing.T) {
	leakcheck.Check(t)
	h := startCluster(t, 3, nil)
	spec := []byte(`{"workload":"mysql","config":"base","seed":11,"warm":3,"measure":20}`)

	var sub submitResponse
	code, _ := httpDo(t, http.MethodPost, h.nodes[0].url+"/v1/jobs", spec, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	owner := h.ownerOf(sub.ID)
	front := h.nonOwnerOf(sub.ID)
	orig := pollJob(t, front, sub.ID)
	if orig.Result == nil {
		t.Fatalf("original job has no result: %+v", orig)
	}

	owner.kill()

	// Reads now fail over; the front misses locally and must answer
	// retryable, flagged as a failover, never a 404.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var job jobResponse
		code, hdr := httpDo(t, http.MethodGet, front.url+"/v1/jobs/"+sub.ID, nil, &job)
		if code == http.StatusNotFound || code == http.StatusGone {
			t.Fatalf("failed-over read = %d, want 503 or a served result", code)
		}
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Fatal("503 after failover without Retry-After")
			}
			if hdr.Get(cluster.FailoverHeader) == "" {
				t.Fatal("503 after failover without failover marker")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("read never failed over (last code %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Resubmitting the spec recomputes on a survivor; content-derived
	// IDs make the replacement bit-identical.
	deadline = time.Now().Add(10 * time.Second)
	var re submitResponse
	for {
		code, _ = httpDo(t, http.MethodPost, front.url+"/v1/jobs", spec, &re)
		if code == http.StatusAccepted || code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resubmit never accepted (last code %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if re.ID != sub.ID {
		t.Fatalf("recomputed job ID %s != original %s", re.ID, sub.ID)
	}
	redo := pollJob(t, front, sub.ID)
	if redo.Result == nil {
		t.Fatalf("recomputed job has no result: %+v", redo)
	}
	if redo.Result.Instructions != orig.Result.Instructions ||
		redo.Result.Cycles != orig.Result.Cycles ||
		redo.Result.TrampInstrs != orig.Result.TrampInstrs ||
		redo.Result.Resolutions != orig.Result.Resolutions {
		t.Fatalf("recompute diverged:\n  orig %+v\n  redo %+v", orig.Result, redo.Result)
	}
	if h.failovers() == 0 {
		t.Fatal("no failovers recorded despite dead owner")
	}

	// The cluster instrument set is on the shared scrape.
	var buf bytes.Buffer
	resp, err := http.Get(front.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(&buf, resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"dlsim_cluster_forwards_total", "dlsim_cluster_failovers_total", "dlsim_cluster_peer_up"} {
		if !strings.Contains(buf.String(), metric) {
			t.Fatalf("/metrics missing %s", metric)
		}
	}
}

// TestClusterForwardedFailoverMissAnswers503 pins the serving side of
// the failed-over-miss contract on an intermediate replica: a
// forwarded GET that carries the failover marker and misses locally
// answers 503 + Retry-After + miss marker (the dead owner may still
// hold the result), while the same miss on a plain owner-forwarded
// GET stays an honest 404.
func TestClusterForwardedFailoverMissAnswers503(t *testing.T) {
	leakcheck.Check(t)
	h := startCluster(t, 3, nil)
	const unknown = "job-deadbeef"

	get := func(failover bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, h.nodes[0].url+"/v1/jobs/"+unknown, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.ForwardedByHeader, "test")
		if failover {
			req.Header.Set(cluster.FailoverHeader, "1")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get(false); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("owner-forwarded miss = %d, want 404", resp.StatusCode)
	}
	resp := get(true)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed-over miss = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("failed-over miss without Retry-After")
	}
	if resp.Header.Get(cluster.MissHeader) != "1" {
		t.Error("failed-over miss without the miss marker — the forwarder would count it as a peer fault")
	}
}

// TestClusterForwardedRequestServedLocally checks the one-hop rule at
// the HTTP layer: a request carrying the forwarded marker is served
// where it lands even when the node does not own the ID.
func TestClusterForwardedRequestServedLocally(t *testing.T) {
	leakcheck.Check(t)
	h := startCluster(t, 3, nil)
	spec := []byte(`{"workload":"apache","config":"base","seed":3,"warm":3,"measure":25}`)

	// Pick a node that does NOT own the job and submit with the
	// forwarded marker set: it must compute locally, not re-forward.
	norm := runner.JobSpec{Workload: "apache", Config: "base", Seed: 3, Warm: 3, Measure: 25}
	n, err := norm.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	key, err := n.Key()
	if err != nil {
		t.Fatal(err)
	}
	id := runner.IDFromKey(key)
	front := h.nonOwnerOf(id)

	req, err := http.NewRequest(http.MethodPost, front.url+"/v1/jobs", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.ForwardedByHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forwarded submit = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.NodeHeader); got != front.name {
		t.Fatalf("forwarded submit served by %q, want local node %q", got, front.name)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID != id {
		t.Fatalf("forwarded submit ID %s, want %s", sub.ID, id)
	}
}
