package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// benchSweepJSON is the sweep both cluster-bench sides run: 12 jobs,
// enough to keep every worker busy without dwarfing the forwarding
// cost being compared.
var benchSweepJSON = []byte(`{"workload":"apache","configs":["base","enhanced"],"seeds":[1,2,3,4,5,6],"warm":5,"measure":40}`)

// runBenchSweep submits the sweep at base URL and polls to
// completion.  Every iteration gets a fresh pool, so jobs always
// recompute: the benchmark measures end-to-end service throughput,
// not the result cache.
func runBenchSweep(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/batches", "application/json", bytes.NewReader(benchSweepJSON))
	if err != nil {
		b.Fatal(err)
	}
	var sub batchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st runner.BatchStatus
		code, _ := httpDo(b, http.MethodGet, url+"/v1/batches/"+sub.ID, nil, &st)
		if code != http.StatusOK {
			b.Fatalf("batch poll = %d", code)
		}
		if st.Completed {
			if st.Failed != 0 {
				b.Fatalf("batch failed %d jobs", st.Failed)
			}
			return
		}
		if time.Now().After(deadline) {
			b.Fatal("batch never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkSweepSingleNode is the unclustered baseline: one dlsimd
// node runs the sweep locally.
func BenchmarkSweepSingleNode(b *testing.B) {
	b.ReportMetric(12, "jobs/op")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool := runner.New(runner.Options{Workers: 4})
		ts := httptest.NewServer(newServer(pool, serverConfig{}))
		b.StartTimer()
		runBenchSweep(b, ts.URL)
		b.StopTimer()
		ts.Close()
		pool.Close()
		b.StartTimer()
	}
}

// BenchmarkSweepThreeNode runs the same sweep through a healthy
// 3-node loopback cluster, submitted via a node that does not own the
// batch so every submission and poll pays one forwarding hop.  The
// gap to BenchmarkSweepSingleNode is the cluster tax at N=3 on one
// machine (loopback RTT + JSON relay), bought for horizontal
// failover; real deployments spread the pools over machines.
func BenchmarkSweepThreeNode(b *testing.B) {
	var sweep runner.SweepSpec
	if err := json.Unmarshal(benchSweepJSON, &sweep); err != nil {
		b.Fatal(err)
	}
	batchID, err := sweep.ID()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(12, "jobs/op")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := startCluster(b, 3, func(_ int, co *cluster.Options, ro *runner.Options) {
			ro.Workers = 4
			co.ProbeInterval = time.Hour // healthy run: probes off the profile
		})
		front := h.nonOwnerOf(batchID)
		b.StartTimer()
		runBenchSweep(b, front.url)
		b.StopTimer()
		h.close()
		b.StartTimer()
	}
}

// BenchmarkFailoverLatency measures the client-visible cost of one
// failed-over read: the batch owner is dead (already marked down by
// probes), so every GET walks the ring past it and is answered by the
// next replica.  ns/op is the mean round-trip; p99_us is reported as
// a custom metric for the tail.
func BenchmarkFailoverLatency(b *testing.B) {
	h := startCluster(b, 3, nil)
	defer h.close()

	// A completed job whose ring owner will die: submit, wait, kill.
	spec := []byte(`{"workload":"mysql","config":"base","seed":11,"warm":3,"measure":20}`)
	var sub submitResponse
	code, _ := httpDo(b, http.MethodPost, h.nodes[0].url+"/v1/jobs", spec, &sub)
	if code != http.StatusAccepted {
		b.Fatalf("submit = %d", code)
	}
	owner := h.ownerOf(sub.ID)
	front := h.nonOwnerOf(sub.ID)
	pollJob(b, front, sub.ID)
	owner.kill()

	// Wait until probes mark the owner down so the measured path is
	// steady-state failover (ring skip), not first-detection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var r readyzResponse
		if code, _ := httpDo(b, http.MethodGet, front.url+"/readyz", nil, &r); code == http.StatusOK && r.Status == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("dead owner never marked down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		code, hdr := httpDo(b, http.MethodGet, front.url+"/v1/jobs/"+sub.ID, nil, nil)
		lat = append(lat, time.Since(start))
		// The owner computed the job; the failover lands on a replica
		// without it, whose answer must be the retryable miss — still
		// a complete, headered response, which is what we time.
		if code != http.StatusServiceUnavailable && code != http.StatusOK {
			b.Fatalf("failed-over read = %d", code)
		}
		if hdr.Get(cluster.FailoverHeader) == "" {
			b.Fatal("response missing failover marker")
		}
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[(len(lat)*99)/100]
	b.ReportMetric(float64(p99.Microseconds()), "p99_us")
}
