package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// scrape fetches GET /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.TextContentType {
		t.Errorf("content type = %q, want %q", ct, telemetry.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsEndpoint is the acceptance criterion: one scrape covers
// the runner pool, the cache, retry/shed counters, per-workload
// simulation counters, fault-injection points, and the HTTP front end
// — all under stable names.
func TestMetricsEndpoint(t *testing.T) {
	faultinject.Enable("dlsimd.submit", faultinject.PointConfig{Mode: faultinject.Delay, Prob: 0})
	t.Cleanup(faultinject.Reset)
	ts, _ := newTestServer(t)

	sub, code := postJob(t, ts, specA)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollState(t, ts, sub.ID, runner.StateDone)
	if _, code := postJob(t, ts, specA); code != http.StatusOK {
		t.Fatalf("resubmit status = %d, want cached 200", code)
	}

	out := scrape(t, ts)
	for _, want := range []string{
		// Runner pool and queue.
		"# TYPE dlsim_runner_workers gauge",
		"dlsim_runner_jobs_completed_total 1",
		"dlsim_runner_queue_wait_ms_count",
		"dlsim_runner_job_wall_ms_count 1",
		// Cache effectiveness.
		"dlsim_runner_cache_misses_total 1",
		"dlsim_runner_cache_hits_total 1",
		// Retry/shed counters exist even at zero.
		"dlsim_runner_retries_total 0",
		"dlsim_runner_shed_total 0",
		// Per-workload simulation counters.
		`dlsim_sim_instructions_total{workload="memcached",config="base"}`,
		`dlsim_sim_abtb_redirects_total{workload="memcached",config="base"}`,
		// Fault-injection points (armed above, synced at scrape; under
		// `make faults` the environment arms extra points, so assert
		// presence rather than an exact armed count).
		`dlsim_fault_point_hits{point="dlsimd.submit"}`,
		"# TYPE dlsim_fault_points_armed gauge",
		// HTTP front end and process.
		`dlsim_http_requests_total{route="/v1/jobs",method="POST",code="202"} 1`,
		`dlsim_http_requests_total{route="/v1/jobs",method="POST",code="200"} 1`,
		"# TYPE dlsim_http_request_ms histogram",
		"# TYPE dlsim_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "dlsim_fault_points_armed ") && strings.HasSuffix(line, " 0") {
			t.Errorf("armed-points gauge reads 0 with a point armed: %q", line)
		}
	}
}

// TestTraceIDPropagation is the acceptance criterion: the ID returned
// by POST /v1/jobs addresses both the job and its trace, and the
// trace shows the phase breakdown with per-phase durations.
func TestTraceIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)

	sub, code := postJob(t, ts, specB)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollState(t, ts, sub.ID, runner.StateDone)

	resp, err := http.Get(ts.URL + "/v1/traces/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces/%s status = %d", sub.ID, resp.StatusCode)
	}
	var tr telemetry.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != sub.ID {
		t.Errorf("trace id = %s, want job id %s", tr.ID, sub.ID)
	}
	if tr.Root.Name != "job" || tr.Root.InProgress {
		t.Errorf("root = %+v, want finished job span", tr.Root)
	}
	if tr.Root.Attrs["workload"] != "memcached" {
		t.Errorf("root attrs = %v", tr.Root.Attrs)
	}
	names := make([]string, len(tr.Root.Children))
	for i, c := range tr.Root.Children {
		names[i] = c.Name
		if c.DurMS < 0 {
			t.Errorf("phase %s has negative duration", c.Name)
		}
	}
	if got := strings.Join(names, " "); got != "queued attempt" {
		t.Errorf("phases = %q, want \"queued attempt\"", got)
	}

	// Unknown trace IDs 404 with the structured envelope.
	resp2, err := http.Get(ts.URL + "/v1/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp2.StatusCode)
	}
	if e := decodeError(t, resp2); e.Code != http.StatusNotFound || e.RequestID == "" {
		t.Errorf("error envelope = %+v, want 404 with request id", e)
	}
}

// TestStatsMatchesMetrics: /v1/stats and /metrics are two views over
// the same registry, so their numbers cannot drift.
func TestStatsMatchesMetrics(t *testing.T) {
	ts, _ := newTestServer(t)
	sub, _ := postJob(t, ts, specC)
	pollState(t, ts, sub.ID, runner.StateDone)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := scrape(t, ts)
	if !strings.Contains(out, "dlsim_runner_jobs_completed_total 1") || st.Completed != 1 {
		t.Errorf("completed: stats=%d, exposition:\n%s", st.Completed, out)
	}
	if st.JobP50MS <= 0 || st.JobP99MS < st.JobP50MS {
		t.Errorf("latency quantiles p50=%.3f p99=%.3f", st.JobP50MS, st.JobP99MS)
	}
	if st.UptimeS < 0 {
		t.Errorf("uptime = %f", st.UptimeS)
	}
}

// TestTraceSurvivesRetry: a job that retried shows the backoff phase
// through the HTTP trace endpoint.
func TestTraceSurvivesRetry(t *testing.T) {
	armed(t, "runner.execute", faultinject.PointConfig{Mode: faultinject.Error, Prob: 1, Count: 1})
	ts, _ := newTestServerOpts(t, runner.Options{
		Workers: 1,
		Retry:   runner.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}, serverConfig{})

	sub, _ := postJob(t, ts, specA)
	pollState(t, ts, sub.ID, runner.StateDone)

	resp, err := http.Get(ts.URL + "/v1/traces/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr telemetry.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range tr.Root.Children {
		names = append(names, c.Name)
	}
	if got := strings.Join(names, " "); got != "queued attempt backoff queued attempt" {
		t.Errorf("phases = %q, want retry anatomy", got)
	}
	if got := scrape(t, ts); !strings.Contains(got, "dlsim_runner_retries_total 1") {
		t.Error("exposition missing retry counter increment")
	}
}
