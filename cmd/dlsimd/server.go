package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/runner"
	"repro/internal/stats"
)

// server is the dlsimd HTTP front end over a runner pool.
type server struct {
	pool    *runner.Runner
	started time.Time
	mux     *http.ServeMux
}

// newServer wires the v1 API onto the pool.
func newServer(pool *runner.Runner) *server {
	s := &server{pool: pool, started: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorJSON is the error envelope of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// submitResponse answers POST /v1/jobs.
type submitResponse struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	State  runner.JobState `json:"state"`
	Cached bool            `json:"cached"`
	Spec   runner.JobSpec  `json:"spec"`
}

// handleSubmit validates and enqueues a job, returning its ID for
// polling.  Submitting an already-known spec is idempotent: the
// existing job's ID comes back with cached=true.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec runner.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	job, reused, err := s.pool.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if reused {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{
		ID:     job.ID,
		Key:    job.Key,
		State:  job.State(),
		Cached: reused,
		Spec:   job.Spec,
	})
}

// classJSON summarises one request class's latency sample.
type classJSON struct {
	N      int     `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// resultJSON is the wire form of a completed job's Result.
type resultJSON struct {
	WallMS   float64 `json:"wall_ms"`
	CacheHit bool    `json:"cache_hit"`

	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	TrampInstrs  uint64 `json:"tramp_instrs"`
	TrampCalls   uint64 `json:"tramp_calls"`
	TrampSkips   uint64 `json:"tramp_skips"`
	Resolutions  uint64 `json:"resolutions"`

	PKI struct {
		TrampInstrs float64 `json:"tramp_instrs"`
		L1IMisses   float64 `json:"l1i_misses"`
		ITLBMisses  float64 `json:"itlb_misses"`
		L1DMisses   float64 `json:"l1d_misses"`
		DTLBMisses  float64 `json:"dtlb_misses"`
		Mispredicts float64 `json:"mispredicts"`
	} `json:"pki"`

	DistinctTrampolines int    `json:"distinct_trampolines"`
	LibCalls            uint64 `json:"lib_calls"`

	Classes map[string]classJSON `json:"classes"`
}

// jobResponse answers GET /v1/jobs/{id}.
type jobResponse struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	State  runner.JobState `json:"state"`
	Spec   runner.JobSpec  `json:"spec"`
	Error  string          `json:"error,omitempty"`
	Result *resultJSON     `json:"result,omitempty"`
}

// handleJob reports a job's state and, once done, its result.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.pool.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	resp := jobResponse{ID: job.ID, Key: job.Key, State: job.State(), Spec: job.Spec}
	if res, err, done := job.Result(); done {
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Result = marshalResult(res)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// marshalResult flattens a Result into its wire form.  The cached
// Result's samples are pre-sorted and immutable, so percentile reads
// here are safe under concurrent requests.
func marshalResult(res *runner.Result) *resultJSON {
	out := &resultJSON{
		WallMS:              float64(res.Wall) / float64(time.Millisecond),
		CacheHit:            res.CacheHit,
		Instructions:        res.Counters.Instructions,
		Cycles:              res.Counters.Cycles,
		TrampInstrs:         res.Counters.TrampInstrs,
		TrampCalls:          res.Counters.TrampCalls,
		TrampSkips:          res.Counters.TrampSkips,
		Resolutions:         res.Counters.Resolutions,
		DistinctTrampolines: res.Trace.Distinct(),
		LibCalls:            res.Trace.Total(),
		Classes:             make(map[string]classJSON, len(res.Samples)),
	}
	out.PKI.TrampInstrs = res.PKI.TrampInstrs
	out.PKI.L1IMisses = res.PKI.L1IMisses
	out.PKI.ITLBMisses = res.PKI.ITLBMisses
	out.PKI.L1DMisses = res.PKI.L1DMisses
	out.PKI.DTLBMisses = res.PKI.DTLBMisses
	out.PKI.Mispredicts = res.PKI.Mispredicts
	for class, sample := range res.Samples {
		out.Classes[class] = summariseClass(sample)
	}
	return out
}

func summariseClass(s *stats.Sample) classJSON {
	return classJSON{
		N:      s.N(),
		MeanUS: s.Mean(),
		P50US:  s.Percentile(50),
		P95US:  s.Percentile(95),
		P99US:  s.Percentile(99),
	}
}

// statsResponse answers GET /v1/stats.
type statsResponse struct {
	runner.Stats
	UptimeS   float64             `json:"uptime_s"`
	Workloads []string            `json:"workloads"`
	Configs   []runner.ConfigKind `json:"configs"`
}

// handleStats reports pool depth, cache effectiveness and job latency.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:     s.pool.Stats(),
		UptimeS:   time.Since(s.started).Seconds(),
		Workloads: runner.WorkloadNames(),
		Configs:   runner.ConfigKinds(),
	})
}
