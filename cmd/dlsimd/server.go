package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/pool"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/timeline"
)

// serverConfig tunes the HTTP front end's robustness behaviour.
type serverConfig struct {
	// logger receives one structured JSON line per request (method,
	// route, status, duration, request ID) and panic reports.  Nil
	// discards.  Create it with zero flags: every line is a complete
	// JSON object carrying its own timestamp.
	logger *log.Logger

	// requestTimeout bounds each request's handling via its context.
	// Zero means no per-request timeout.
	requestTimeout time.Duration

	// retryAfter is the Retry-After hint attached to 429 responses
	// when admission control sheds a submission and to 503s answered
	// when an ID's owner peer is unreachable.  Zero means 1s.
	retryAfter time.Duration

	// cluster, when non-nil, enables sharded multi-node mode: job and
	// batch requests are consistent-hash-routed by their
	// content-derived IDs, with health-checked failover, per-peer
	// circuit breakers and optional hedged result reads (see
	// internal/cluster).  Nil serves everything locally.
	cluster *cluster.Cluster

	// history, when non-nil, is the metrics-history ring behind GET
	// /v1/metrics/history (see telemetry.History).  Nil disables the
	// endpoint (404).
	history *telemetry.History
}

// server is the dlsimd HTTP front end over a runner pool.
type server struct {
	pool    *runner.Runner
	cfg     serverConfig
	started time.Time
	mux     *http.ServeMux

	// reg is the pool's telemetry registry; the server registers its
	// own HTTP instruments there too, so GET /metrics is one scrape
	// covering service and engine.
	reg          *telemetry.Registry
	httpRequests *telemetry.CounterVec
	httpLatency  *telemetry.Histogram
	faultHits    *telemetry.GaugeVec
	faultInject  *telemetry.GaugeVec
	faultArmed   *telemetry.Gauge

	// draining flips once shutdown starts: /readyz goes 503 and new
	// submissions are refused while in-flight jobs finish.
	draining atomic.Bool
}

// newServer wires the v1 API onto the pool and registers the HTTP
// instrument set in the pool's telemetry registry.
func newServer(pool *runner.Runner, cfg serverConfig) *server {
	if cfg.logger == nil {
		cfg.logger = log.New(io.Discard, "", 0)
	}
	if cfg.retryAfter <= 0 {
		cfg.retryAfter = time.Second
	}
	reg := pool.Metrics()
	s := &server{
		pool:    pool,
		cfg:     cfg,
		started: time.Now(),
		mux:     http.NewServeMux(),
		reg:     reg,

		httpRequests: reg.CounterVec("dlsim_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code"),
		httpLatency: reg.Histogram("dlsim_http_request_ms",
			"HTTP request handling latency.",
			telemetry.ExponentialBuckets(0.25, 2, 16)),
		faultHits: reg.GaugeVec("dlsim_fault_point_hits",
			"Fire evaluations per armed fault-injection point.", "point"),
		faultInject: reg.GaugeVec("dlsim_fault_point_injections",
			"Faults delivered per armed fault-injection point.", "point"),
		faultArmed: reg.Gauge("dlsim_fault_points_armed",
			"Number of armed fault-injection points."),
	}
	started := s.started
	reg.GaugeFunc("dlsim_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(started).Seconds() })

	registerRuntimeGauges(reg)

	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleJobTimeline)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// registerRuntimeGauges adds the process-level dashboard gauges:
// build identity (a constant-1 info gauge carrying version labels,
// the Prometheus idiom) and Go runtime health (goroutines, heap).
// Registration is idempotent, so multiple servers over one registry
// (the loopback cluster harness) are fine.
func registerRuntimeGauges(reg *telemetry.Registry) {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	reg.GaugeVec("dlsim_build_info",
		"Build identity; always 1, labelled with the module version and Go toolchain.",
		"version", "go_version").With(version, runtime.Version()).Set(1)
	reg.GaugeFunc("dlsim_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("dlsim_go_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}

// startDrain stops admission: /readyz reports 503 (so load balancers
// route away) and new job submissions are refused while in-flight
// jobs keep running.
func (s *server) startDrain() { s.draining.Store(true) }

// requestIDKey carries the request's correlation ID in its context.
type requestIDKey struct{}

// requestID returns the correlation ID minted (or honored) for this
// request, "" outside the middleware.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// reqSeq breaks ties if the random source ever fails.
var reqSeq atomic.Uint64

// newRequestID mints a fresh correlation ID: 8 random bytes, hex.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d-%d", time.Now().UnixNano(), reqSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// route maps a request path to its bounded-cardinality route pattern
// for metric labels: path parameters are folded, unknown paths share
// one bucket.  Never label metrics with raw paths (see DESIGN.md §8).
func route(r *http.Request) string {
	p := r.URL.Path
	switch {
	case strings.HasPrefix(p, "/v1/jobs/") && strings.HasSuffix(p, "/timeline"):
		return "/v1/jobs/{id}/timeline"
	case p == "/v1/metrics/history":
		return p
	case strings.HasPrefix(p, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(p, "/v1/batches/"):
		return "/v1/batches/{id}"
	case strings.HasPrefix(p, "/v1/traces/"):
		return "/v1/traces/{id}"
	case p == "/v1/jobs", p == "/v1/batches", p == "/v1/stats", p == "/metrics", p == "/healthz", p == "/readyz":
		return p
	default:
		return "other"
	}
}

// statusRecorder captures the status code written by a handler for
// the request log and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// logJSON writes one structured log line: base fields plus kv pairs.
func (s *server) logJSON(msg string, kv map[string]any) {
	line := map[string]any{
		"time": time.Now().UTC().Format(time.RFC3339Nano),
		"msg":  msg,
	}
	for k, v := range kv {
		line[k] = v
	}
	b, err := json.Marshal(line)
	if err != nil {
		s.cfg.logger.Printf(`{"msg":"logging error","error":%q}`, err.Error())
		return
	}
	s.cfg.logger.Printf("%s", b)
}

// ServeHTTP assigns every request a correlation ID (honoring an
// incoming X-Request-ID and echoing it back), applies the per-request
// timeout, records HTTP metrics, emits one structured JSON log line
// per request, and converts handler panics into structured 500s so
// one bad request cannot take out the connection without a response.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.cfg.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
		defer cancel()
	}
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = newRequestID()
	}
	ctx = context.WithValue(ctx, requestIDKey{}, reqID)
	r = r.WithContext(ctx)
	w.Header().Set("X-Request-ID", reqID)
	if s.cfg.cluster != nil {
		// Name the serving node so clients (and the chaos suite) can
		// see where a routed request landed; a relayed response keeps
		// the remote peer's value instead.
		w.Header().Set(cluster.NodeHeader, s.cfg.cluster.Self())
	}

	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			s.logJSON("panic", map[string]any{
				"method": r.Method, "path": r.URL.Path, "request_id": reqID,
				"panic": fmt.Sprint(v),
			})
			// Best effort: if the handler had not written yet this
			// produces a well-formed JSON 500.
			writeError(rec, r, http.StatusInternalServerError, "internal error: %v", v)
		}
		dur := time.Since(start)
		s.httpRequests.With(route(r), r.Method, strconv.Itoa(rec.status)).Inc()
		s.httpLatency.Observe(float64(dur) / 1e6)
		s.logJSON("request", map[string]any{
			"method": r.Method, "path": r.URL.Path, "status": rec.status,
			"dur_ms": float64(dur.Round(time.Microsecond)) / 1e6, "request_id": reqID,
		})
	}()
	s.mux.ServeHTTP(rec, r)
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorJSON is the error envelope of every non-2xx response: a
// human-readable message, the machine-readable status code, and the
// request's correlation ID so a 429 or 500 can be matched to its log
// line.
type errorJSON struct {
	Error     string `json:"error"`
	Code      int    `json:"code"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{
		Error:     fmt.Sprintf(format, args...),
		Code:      status,
		RequestID: requestID(r),
	})
}

// setRetryAfter stamps the Retry-After hint (whole seconds, rounded
// up) on a response the client should repeat later: 429s from
// admission shedding and 503s answered while an ID's owner peer is
// unreachable or circuit-broken.
func (s *server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.retryAfter+time.Second-1)/time.Second)))
}

// routeCluster consistent-hash-routes one request by its
// content-derived ID.  It returns the forwarding outcome;
// Outcome.Handled means a peer's response was already relayed.  A
// request that arrived forwarded is always served locally (one-hop
// rule: the forwarder already walked the ring, so serving here — even
// as a non-owner — is the failover, and content-derived IDs make that
// idempotent).  A forwarded request stamped with the failover marker
// reached a non-owner because the ID's owner was bypassed, so it
// reports FailedOver: a local GET miss must then answer retryable
// (clusterMiss), never 404 — the owner may still hold the result.
func (s *server) routeCluster(w http.ResponseWriter, r *http.Request, req cluster.Request) cluster.Outcome {
	cl := s.cfg.cluster
	if cl == nil {
		return cluster.Outcome{}
	}
	if r.Header.Get(cluster.ForwardedByHeader) != "" {
		return cluster.Outcome{FailedOver: r.Header.Get(cluster.FailoverHeader) == "1"}
	}
	return cl.Route(w, r, req)
}

// clusterMiss answers a local lookup miss after a failed-over GET: the
// ID's owner is unreachable and may still hold the result, so a 404
// would overclaim.  503 + Retry-After tells the client to come back
// once the owner returns (or a resubmission has recomputed the ID
// elsewhere — either way the ID itself stays valid).  The miss marker
// tells a forwarding peer this is "replica doesn't hold it", not a
// node fault: it keeps walking the ring instead of relaying or
// tripping the breaker.
func (s *server) clusterMiss(w http.ResponseWriter, r *http.Request, kind, id string) {
	s.setRetryAfter(w)
	w.Header().Set(cluster.MissHeader, "1")
	writeError(w, r, http.StatusServiceUnavailable,
		"%s %q: owner peer unreachable and no local copy; retry, or resubmit to recompute", kind, id)
}

// submitResponse answers POST /v1/jobs.
type submitResponse struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	State  runner.JobState `json:"state"`
	Cached bool            `json:"cached"`
	Spec   runner.JobSpec  `json:"spec"`
}

// handleSubmit validates and enqueues a job, returning its ID for
// polling.  Submitting an already-known spec is idempotent: the
// existing job's ID comes back with cached=true.  Failure paths:
// 400 for a bad spec, 429 (+ Retry-After) when admission control
// sheds, 503 while draining or after shutdown.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if err := faultinject.FireCtx(r.Context(), "dlsimd.submit"); err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	var spec runner.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	if s.cfg.cluster != nil {
		// Route by the job's content-derived ID.  The normalized spec
		// is forwarded (not the raw body), so the owner computes the
		// same ID; validation errors stay local and cheap.
		norm, err := spec.Normalize()
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		key, _ := norm.Key()
		body, err := json.Marshal(norm)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, "%v", err)
			return
		}
		if out := s.routeCluster(w, r, cluster.Request{
			ID:     runner.IDFromKey(key),
			Method: http.MethodPost,
			Path:   "/v1/jobs",
			Body:   body,
		}); out.Handled {
			return
		}
		spec = norm
	}
	job, reused, err := s.pool.Submit(spec)
	switch {
	case errors.Is(err, runner.ErrQueueFull):
		s.setRetryAfter(w)
		writeError(w, r, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, runner.ErrRunnerClosed):
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if reused {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{
		ID:     job.ID,
		Key:    job.Key,
		State:  job.State(),
		Cached: reused,
		Spec:   job.Spec,
	})
}

// batchSubmitResponse answers POST /v1/batches.
type batchSubmitResponse struct {
	ID     string           `json:"id"`
	Total  int              `json:"total"`
	Cached bool             `json:"cached"`
	Specs  []runner.JobSpec `json:"specs"`
}

// handleSubmitBatch validates and enqueues a sweep as one batch of
// deduplicated jobs.  The batch ID is content-derived, so
// resubmitting an identical sweep returns the existing batch (200)
// instead of enqueueing anything; job-level dedup against prior
// non-batch traffic applies regardless.
func (s *server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if err := faultinject.FireCtx(r.Context(), "dlsimd.submit"); err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	var sweep runner.SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sweep); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid sweep spec: %v", err)
		return
	}
	if s.cfg.cluster != nil {
		// Route by the sweep's content-derived batch ID so an identical
		// sweep always lands on (and dedups at) the same owner.
		id, err := sweep.ID()
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "%v", err)
			return
		}
		body, err := json.Marshal(sweep)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, "%v", err)
			return
		}
		if out := s.routeCluster(w, r, cluster.Request{
			ID:     id,
			Method: http.MethodPost,
			Path:   "/v1/batches",
			Body:   body,
		}); out.Handled {
			return
		}
	}
	batch, reused, err := s.pool.SubmitBatch(sweep)
	switch {
	case errors.Is(err, runner.ErrQueueFull):
		s.setRetryAfter(w)
		writeError(w, r, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, runner.ErrRunnerClosed):
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if reused {
		status = http.StatusOK
	}
	writeJSON(w, status, batchSubmitResponse{
		ID:     batch.ID,
		Total:  len(batch.Specs),
		Cached: reused,
		Specs:  batch.Specs,
	})
}

// handleBatch reports a batch's progress, per-job states (with each
// failure's error) and per-config aggregates.  Completed batches
// survive retention eviction and restarts via the disk store; a
// batch ID recently dropped from retention (and absent from the
// store) answers 410 Gone like an evicted job, and IDs never seen —
// or forgotten by the bounded evicted-ID memory — answer 404.  The
// underlying jobs remain individually addressable via /v1/jobs/{id}.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	out := s.routeCluster(w, r, cluster.Request{
		ID:     id,
		Method: http.MethodGet,
		Path:   "/v1/batches/" + id,
		Hedge:  true,
	})
	if out.Handled {
		return
	}
	batch, ok := s.pool.Batch(id)
	if !ok {
		if out.FailedOver {
			s.clusterMiss(w, r, "batch", id)
			return
		}
		if s.pool.Evicted(id) {
			writeError(w, r, http.StatusGone, "batch %q evicted from batch retention; resubmit its sweep to recompute", id)
			return
		}
		writeError(w, r, http.StatusNotFound, "no batch %q", id)
		return
	}
	writeJSON(w, http.StatusOK, batch.Status())
}

// classJSON summarises one request class's latency sample.
type classJSON struct {
	N      int     `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// sampledJSON is the wire form of a sampled job's interval
// estimates: the window geometry plus each metric's per-request mean
// and 95% confidence half-width.  Exact jobs omit the block entirely.
type sampledJSON struct {
	Windows       int                              `json:"windows"`
	FastForwarded int                              `json:"fast_forwarded_per_window"`
	Warmed        int                              `json:"warmup_per_window"`
	Measured      int                              `json:"measured_per_window"`
	Metrics       map[string]runner.SampledCounter `json:"metrics"`
}

// resultJSON is the wire form of a completed job's Result.
type resultJSON struct {
	WallMS    float64 `json:"wall_ms"`
	SetupMS   float64 `json:"setup_ms"`
	MeasureMS float64 `json:"measure_ms"`
	CacheHit  bool    `json:"cache_hit"`

	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	TrampInstrs  uint64 `json:"tramp_instrs"`
	TrampCalls   uint64 `json:"tramp_calls"`
	TrampSkips   uint64 `json:"tramp_skips"`
	Resolutions  uint64 `json:"resolutions"`

	PKI struct {
		TrampInstrs float64 `json:"tramp_instrs"`
		L1IMisses   float64 `json:"l1i_misses"`
		ITLBMisses  float64 `json:"itlb_misses"`
		L1DMisses   float64 `json:"l1d_misses"`
		DTLBMisses  float64 `json:"dtlb_misses"`
		Mispredicts float64 `json:"mispredicts"`
	} `json:"pki"`

	DistinctTrampolines int    `json:"distinct_trampolines"`
	LibCalls            uint64 `json:"lib_calls"`

	Classes map[string]classJSON `json:"classes"`

	// Sampled carries the mean ± ci95 interval estimates of a job run
	// with sample_windows > 0; nil (omitted) on exact jobs.  For such
	// jobs Instructions/Cycles/PKI above cover only the measured
	// window excerpts, not the fast-forwarded stretches between them.
	Sampled *sampledJSON `json:"sampled,omitempty"`
}

// jobResponse answers GET /v1/jobs/{id}.
type jobResponse struct {
	ID       string          `json:"id"`
	Key      string          `json:"key"`
	State    runner.JobState `json:"state"`
	Spec     runner.JobSpec  `json:"spec"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Result   *resultJSON     `json:"result,omitempty"`
}

// handleJob reports a job's state and, once done, its result.  IDs
// recently dropped by the result cache's retention bound answer 410
// Gone (resubmitting the spec recomputes them); IDs the runner has
// never seen — or evicted so long ago that the bounded evicted-ID
// memory forgot them — answer 404.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	out := s.routeCluster(w, r, cluster.Request{
		ID:     id,
		Method: http.MethodGet,
		Path:   "/v1/jobs/" + id,
		Hedge:  true,
	})
	if out.Handled {
		return
	}
	job, ok := s.pool.Job(id)
	if !ok {
		if out.FailedOver {
			// The owner may still hold this result; the local store
			// read-through (inside pool.Job) was the second chance and
			// it missed, so answer retryable rather than 404/410.
			s.clusterMiss(w, r, "job", id)
			return
		}
		if s.pool.Evicted(id) {
			writeError(w, r, http.StatusGone, "job %q evicted from the result cache; resubmit its spec to recompute", id)
			return
		}
		writeError(w, r, http.StatusNotFound, "no job %q", id)
		return
	}
	resp := jobResponse{
		ID:       job.ID,
		Key:      job.Key,
		State:    job.State(),
		Spec:     job.Spec,
		Attempts: job.Attempts(),
	}
	if err := job.Err(); err != nil {
		resp.Error = err.Error()
	} else if res, ok := job.Result(); ok {
		resp.Result = marshalResult(res)
		if resp.Result.Sampled == nil && job.Spec.SampleWindows > 0 {
			// Restored results carry no in-memory estimates; the
			// sampled record persists beside the result (like a
			// timeline), so read it through the store.
			if sr, ok := s.pool.Sampled(job.ID); ok {
				resp.Result.Sampled = marshalSampled(sr)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// timelineResponse answers GET /v1/jobs/{id}/timeline in JSON form.
// The series is marshalled identically on every node, which is what
// makes an owner fetch and a forwarded fetch byte-identical.
type timelineResponse struct {
	ID     string           `json:"id"`
	Series *timeline.Series `json:"series"`
}

// wantCSV reports whether the client asked for CSV, via ?format=csv
// or an Accept: text/csv header.
func wantCSV(r *http.Request) bool {
	if r.URL.Query().Get("format") == "csv" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/csv")
}

// handleJobTimeline serves a completed job's phase-resolved counter
// series (JSON by default, CSV via Accept/?format=csv).  Fetches are
// cluster-routed exactly like the job itself — consistent-hash owner,
// hedged read, ring failover — and the requested format travels in
// the forwarded path, since peers never see the client's Accept
// header.  Jobs that ran with timelines disabled, jobs still in
// flight, and series records lost to crash recovery answer 404 while
// the result itself stays servable.
func (s *server) handleJobTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	csvOut := wantCSV(r)
	path := "/v1/jobs/" + id + "/timeline"
	if csvOut {
		path += "?format=csv"
	}
	out := s.routeCluster(w, r, cluster.Request{
		ID:     id,
		Method: http.MethodGet,
		Path:   path,
		Hedge:  true,
	})
	if out.Handled {
		return
	}
	series, ok := s.pool.Timeline(id)
	if !ok {
		if out.FailedOver {
			// The owner may still hold the series; answer retryable.
			s.clusterMiss(w, r, "timeline", id)
			return
		}
		if job, known := s.pool.Job(id); known {
			switch {
			case job.State() == runner.StateQueued || job.State() == runner.StateRunning:
				writeError(w, r, http.StatusNotFound,
					"job %q has no timeline yet (state %s); poll /v1/jobs/%s until done", id, job.State(), id)
			case job.Spec.TimelineOff:
				writeError(w, r, http.StatusNotFound,
					"job %q ran with timelines disabled (timeline_off); resubmit without it to collect one", id)
			default:
				writeError(w, r, http.StatusNotFound,
					"no timeline for job %q (failed job, or its series record did not survive)", id)
			}
			return
		}
		if s.pool.Evicted(id) {
			writeError(w, r, http.StatusGone,
				"job %q evicted from the result cache; resubmit its spec to recompute", id)
			return
		}
		writeError(w, r, http.StatusNotFound, "no job %q", id)
		return
	}
	if csvOut {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_ = timeline.WriteCSV(w, series)
		return
	}
	writeJSON(w, http.StatusOK, timelineResponse{ID: id, Series: series})
}

// historyIndexResponse answers GET /v1/metrics/history without a
// name: the queryable series names plus ring geometry.
type historyIndexResponse struct {
	IntervalS float64  `json:"interval_s"`
	Samples   int      `json:"samples"`
	Names     []string `json:"names"`
}

// historySeriesResponse answers GET /v1/metrics/history?name=...
type historySeriesResponse struct {
	Name      string                   `json:"name"`
	IntervalS float64                  `json:"interval_s"`
	Points    []telemetry.HistoryPoint `json:"points"`
}

// handleMetricsHistory serves the metrics-history ring: without
// ?name= it lists the queryable series, with it it returns that
// series' (time, value) points — optionally bounded to the last
// ?minutes=N.  Series names are exactly the exposition names GET
// /metrics prints (histograms appear as name_count / name_sum), so a
// dashboard can go from a scrape to a short-horizon chart with no
// external time-series store.
func (s *server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.history
	if h == nil {
		writeError(w, r, http.StatusNotFound, "metrics history disabled (-metrics-history 0)")
		return
	}
	q := r.URL.Query()
	var since time.Time
	if m := q.Get("minutes"); m != "" {
		f, err := strconv.ParseFloat(m, 64)
		if err != nil || f <= 0 {
			writeError(w, r, http.StatusBadRequest, "invalid minutes %q (want a positive number)", m)
			return
		}
		since = time.Now().Add(-time.Duration(f * float64(time.Minute)))
	}
	name := q.Get("name")
	if name == "" {
		writeJSON(w, http.StatusOK, historyIndexResponse{
			IntervalS: h.Interval().Seconds(),
			Samples:   h.Len(),
			Names:     h.Names(),
		})
		return
	}
	writeJSON(w, http.StatusOK, historySeriesResponse{
		Name:      name,
		IntervalS: h.Interval().Seconds(),
		Points:    h.Query(name, since),
	})
}

// handleTrace serves a job's phase breakdown as a JSON span tree.
// The trace shares the job's ID, so clients poll /v1/jobs/{id} and
// fetch /v1/traces/{id} with the same handle.  Traces live in a
// bounded ring, so very old jobs may have been evicted (410 would
// overpromise: we just 404).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tracer := s.pool.Tracer()
	if tracer == nil {
		writeError(w, r, http.StatusNotFound, "tracing disabled")
		return
	}
	tr, ok := tracer.Get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, "no trace %q (unknown job or evicted from the ring)", id)
		return
	}
	writeJSON(w, http.StatusOK, tr.Snapshot())
}

// handleMetrics serves the whole registry — runner pool, per-workload
// simulation counters, HTTP front end, fault-injection points — in
// Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncFaultGauges()
	w.Header().Set("Content-Type", telemetry.TextContentType)
	_ = s.reg.WritePrometheus(w)
}

// syncFaultGauges copies faultinject's per-point counters into the
// registry at scrape time (pull model: faultinject stays free of any
// telemetry dependency).
func (s *server) syncFaultGauges() {
	snap := faultinject.Snapshot()
	s.faultArmed.Set(int64(len(snap)))
	for name, ps := range snap {
		s.faultHits.With(name).Set(int64(ps.Hits))
		s.faultInject.With(name).Set(int64(ps.Injected))
	}
}

// marshalResult flattens a Result into its wire form.  The cached
// Result's samples are pre-sorted and immutable, so percentile reads
// here are safe under concurrent requests.
func marshalResult(res *runner.Result) *resultJSON {
	out := &resultJSON{
		WallMS:              float64(res.Wall) / float64(time.Millisecond),
		SetupMS:             float64(res.SetupWall) / float64(time.Millisecond),
		MeasureMS:           float64(res.MeasureWall) / float64(time.Millisecond),
		CacheHit:            res.CacheHit,
		Instructions:        res.Counters.Instructions,
		Cycles:              res.Counters.Cycles,
		TrampInstrs:         res.Counters.TrampInstrs,
		TrampCalls:          res.Counters.TrampCalls,
		TrampSkips:          res.Counters.TrampSkips,
		Resolutions:         res.Counters.Resolutions,
		DistinctTrampolines: res.DistinctTrampolines(),
		LibCalls:            res.LibCalls(),
		Classes:             make(map[string]classJSON, len(res.Samples)),
	}
	out.PKI.TrampInstrs = res.PKI.TrampInstrs
	out.PKI.L1IMisses = res.PKI.L1IMisses
	out.PKI.ITLBMisses = res.PKI.ITLBMisses
	out.PKI.L1DMisses = res.PKI.L1DMisses
	out.PKI.DTLBMisses = res.PKI.DTLBMisses
	out.PKI.Mispredicts = res.PKI.Mispredicts
	for class, sample := range res.Samples {
		out.Classes[class] = summariseClass(sample)
	}
	if res.Sampled != nil {
		out.Sampled = marshalSampled(res.Sampled)
	}
	return out
}

// marshalSampled flattens a sampled job's interval estimates into
// their wire form.
func marshalSampled(sr *runner.SampledResult) *sampledJSON {
	return &sampledJSON{
		Windows:       sr.Windows,
		FastForwarded: sr.FastForwarded,
		Warmed:        sr.Warmed,
		Measured:      sr.Measured,
		Metrics:       sr.Metrics,
	}
}

func summariseClass(s *stats.Sample) classJSON {
	return classJSON{
		N:      s.N(),
		MeanUS: s.Mean(),
		P50US:  s.Percentile(50),
		P95US:  s.Percentile(95),
		P99US:  s.Percentile(99),
	}
}

// storeStatsJSON is the store tier's row in /v1/stats: the raw
// store.Stats plus the derived hit rate, so operators read both cache
// tiers from one response.
type storeStatsJSON struct {
	store.Stats
	HitRate float64 `json:"hit_rate"`
}

// statsResponse answers GET /v1/stats.
type statsResponse struct {
	runner.Stats
	UptimeS   float64             `json:"uptime_s"`
	Draining  bool                `json:"draining"`
	Workloads []string            `json:"workloads"`
	Configs   []runner.ConfigKind `json:"configs"`

	// ArtifactPool is the artifact pool's gauge set (workload/image
	// hits, resident bytes); Store the disk tier's (entries,
	// segments, bytes, hit rate); Cluster the routing tier's (per-peer
	// health, breaker state and forward outcomes, plus failover and
	// hedge totals).  Each is omitted when its tier is disabled.
	ArtifactPool *pool.Stats     `json:"pool,omitempty"`
	Store        *storeStatsJSON `json:"store,omitempty"`
	Cluster      *cluster.Stats  `json:"cluster,omitempty"`
}

// handleStats reports pool depth, cache effectiveness, failure and
// retry counters, job latency, and the artifact-pool and disk-store
// gauges.  The numbers come from the same telemetry registry GET
// /metrics exposes — runner.Stats() is a typed view over those
// instruments, kept for API compatibility.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Stats:     s.pool.Stats(),
		UptimeS:   time.Since(s.started).Seconds(),
		Draining:  s.draining.Load(),
		Workloads: runner.WorkloadNames(),
		Configs:   runner.ConfigKinds(),
	}
	if ap := s.pool.ArtifactPool(); ap != nil {
		ps := ap.Stats()
		resp.ArtifactPool = &ps
	}
	if st := s.pool.Store(); st != nil {
		ss := storeStatsJSON{Stats: st.Stats()}
		if n := ss.Hits + ss.Misses; n > 0 {
			ss.HitRate = float64(ss.Hits) / float64(n)
		}
		resp.Store = &ss
	}
	if cl := s.cfg.cluster; cl != nil {
		cs := cl.Stats()
		resp.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness: 200 whenever the process can serve at
// all (restart the process if this fails).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyzResponse answers GET /readyz.  Cluster is nil in single-node
// mode; in cluster mode Status reports "degraded" (still 200 — the
// node itself accepts work) when any peer is down or a breaker is
// non-closed, with per-peer detail for operators.
type readyzResponse struct {
	Status  string          `json:"status"`
	Cluster *cluster.Status `json:"cluster,omitempty"`
}

// handleReadyz is readiness: 200 while accepting new jobs, 503 once
// draining — load balancers should stop routing here, but in-flight
// jobs are still being finished and polled.  In cluster mode the body
// also reports per-peer health and breaker state; a degraded cluster
// keeps answering 200 because this node can still serve (requests for
// down owners fail over), but the status string flips to "degraded".
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, http.StatusServiceUnavailable, "draining")
		return
	}
	resp := readyzResponse{Status: "ready"}
	if cl := s.cfg.cluster; cl != nil {
		st := cl.Status()
		resp.Cluster = &st
		if st.Degraded {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
