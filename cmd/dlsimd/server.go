package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/runner"
	"repro/internal/stats"
)

// serverConfig tunes the HTTP front end's robustness behaviour.
type serverConfig struct {
	// logger receives one line per request (method, path, status,
	// duration) and panic reports.  Nil discards.
	logger *log.Logger

	// requestTimeout bounds each request's handling via its context.
	// Zero means no per-request timeout.
	requestTimeout time.Duration

	// retryAfter is the Retry-After hint attached to 429 responses
	// when admission control sheds a submission.  Zero means 1s.
	retryAfter time.Duration
}

// server is the dlsimd HTTP front end over a runner pool.
type server struct {
	pool    *runner.Runner
	cfg     serverConfig
	started time.Time
	mux     *http.ServeMux

	// draining flips once shutdown starts: /readyz goes 503 and new
	// submissions are refused while in-flight jobs finish.
	draining atomic.Bool
}

// newServer wires the v1 API onto the pool.
func newServer(pool *runner.Runner, cfg serverConfig) *server {
	if cfg.logger == nil {
		cfg.logger = log.New(io.Discard, "", 0)
	}
	if cfg.retryAfter <= 0 {
		cfg.retryAfter = time.Second
	}
	s := &server{pool: pool, cfg: cfg, started: time.Now(), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// startDrain stops admission: /readyz reports 503 (so load balancers
// route away) and new job submissions are refused while in-flight
// jobs keep running.
func (s *server) startDrain() { s.draining.Store(true) }

// statusRecorder captures the status code written by a handler for
// the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP applies the per-request timeout, logs every request, and
// converts handler panics into structured 500s so one bad request
// cannot take out the connection without a response.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.requestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	defer func() {
		if v := recover(); v != nil {
			s.cfg.logger.Printf("panic %s %s: %v", r.Method, r.URL.Path, v)
			// Best effort: if the handler had not written yet this
			// produces a well-formed JSON 500.
			writeError(rec, http.StatusInternalServerError, "internal error: %v", v)
		}
		s.cfg.logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	}()
	s.mux.ServeHTTP(rec, r)
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorJSON is the error envelope of every non-2xx response: a
// human-readable message plus the machine-readable status code.
type errorJSON struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...), Code: status})
}

// submitResponse answers POST /v1/jobs.
type submitResponse struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	State  runner.JobState `json:"state"`
	Cached bool            `json:"cached"`
	Spec   runner.JobSpec  `json:"spec"`
}

// handleSubmit validates and enqueues a job, returning its ID for
// polling.  Submitting an already-known spec is idempotent: the
// existing job's ID comes back with cached=true.  Failure paths:
// 400 for a bad spec, 429 (+ Retry-After) when admission control
// sheds, 503 while draining or after shutdown.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if err := faultinject.FireCtx(r.Context(), "dlsimd.submit"); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var spec runner.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	job, reused, err := s.pool.Submit(spec)
	switch {
	case errors.Is(err, runner.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.retryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, runner.ErrRunnerClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if reused {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{
		ID:     job.ID,
		Key:    job.Key,
		State:  job.State(),
		Cached: reused,
		Spec:   job.Spec,
	})
}

// classJSON summarises one request class's latency sample.
type classJSON struct {
	N      int     `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// resultJSON is the wire form of a completed job's Result.
type resultJSON struct {
	WallMS   float64 `json:"wall_ms"`
	CacheHit bool    `json:"cache_hit"`

	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	TrampInstrs  uint64 `json:"tramp_instrs"`
	TrampCalls   uint64 `json:"tramp_calls"`
	TrampSkips   uint64 `json:"tramp_skips"`
	Resolutions  uint64 `json:"resolutions"`

	PKI struct {
		TrampInstrs float64 `json:"tramp_instrs"`
		L1IMisses   float64 `json:"l1i_misses"`
		ITLBMisses  float64 `json:"itlb_misses"`
		L1DMisses   float64 `json:"l1d_misses"`
		DTLBMisses  float64 `json:"dtlb_misses"`
		Mispredicts float64 `json:"mispredicts"`
	} `json:"pki"`

	DistinctTrampolines int    `json:"distinct_trampolines"`
	LibCalls            uint64 `json:"lib_calls"`

	Classes map[string]classJSON `json:"classes"`
}

// jobResponse answers GET /v1/jobs/{id}.
type jobResponse struct {
	ID       string          `json:"id"`
	Key      string          `json:"key"`
	State    runner.JobState `json:"state"`
	Spec     runner.JobSpec  `json:"spec"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Result   *resultJSON     `json:"result,omitempty"`
}

// handleJob reports a job's state and, once done, its result.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.pool.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	resp := jobResponse{
		ID:       job.ID,
		Key:      job.Key,
		State:    job.State(),
		Spec:     job.Spec,
		Attempts: job.Attempts(),
	}
	if err := job.Err(); err != nil {
		resp.Error = err.Error()
	} else if res, ok := job.Result(); ok {
		resp.Result = marshalResult(res)
	}
	writeJSON(w, http.StatusOK, resp)
}

// marshalResult flattens a Result into its wire form.  The cached
// Result's samples are pre-sorted and immutable, so percentile reads
// here are safe under concurrent requests.
func marshalResult(res *runner.Result) *resultJSON {
	out := &resultJSON{
		WallMS:              float64(res.Wall) / float64(time.Millisecond),
		CacheHit:            res.CacheHit,
		Instructions:        res.Counters.Instructions,
		Cycles:              res.Counters.Cycles,
		TrampInstrs:         res.Counters.TrampInstrs,
		TrampCalls:          res.Counters.TrampCalls,
		TrampSkips:          res.Counters.TrampSkips,
		Resolutions:         res.Counters.Resolutions,
		DistinctTrampolines: res.Trace.Distinct(),
		LibCalls:            res.Trace.Total(),
		Classes:             make(map[string]classJSON, len(res.Samples)),
	}
	out.PKI.TrampInstrs = res.PKI.TrampInstrs
	out.PKI.L1IMisses = res.PKI.L1IMisses
	out.PKI.ITLBMisses = res.PKI.ITLBMisses
	out.PKI.L1DMisses = res.PKI.L1DMisses
	out.PKI.DTLBMisses = res.PKI.DTLBMisses
	out.PKI.Mispredicts = res.PKI.Mispredicts
	for class, sample := range res.Samples {
		out.Classes[class] = summariseClass(sample)
	}
	return out
}

func summariseClass(s *stats.Sample) classJSON {
	return classJSON{
		N:      s.N(),
		MeanUS: s.Mean(),
		P50US:  s.Percentile(50),
		P95US:  s.Percentile(95),
		P99US:  s.Percentile(99),
	}
}

// statsResponse answers GET /v1/stats.
type statsResponse struct {
	runner.Stats
	UptimeS   float64             `json:"uptime_s"`
	Draining  bool                `json:"draining"`
	Workloads []string            `json:"workloads"`
	Configs   []runner.ConfigKind `json:"configs"`
}

// handleStats reports pool depth, cache effectiveness, failure and
// retry counters, and job latency.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Stats:     s.pool.Stats(),
		UptimeS:   time.Since(s.started).Seconds(),
		Draining:  s.draining.Load(),
		Workloads: runner.WorkloadNames(),
		Configs:   runner.ConfigKinds(),
	})
}

// handleHealthz is liveness: 200 whenever the process can serve at
// all (restart the process if this fails).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting new jobs, 503 once
// draining — load balancers should stop routing here, but in-flight
// jobs are still being finished and polled.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
