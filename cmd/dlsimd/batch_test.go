package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/runner"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (batchSubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchSubmitResponse
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

func getBatch(t *testing.T, ts *httptest.Server, id string) (runner.BatchStatus, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/batches/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out runner.BatchStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// TestEndToEndBatch drives a sweep through the HTTP API: submit, poll
// the batch to completion, read per-config aggregates, resubmit and
// observe idempotency, and check the jobs stay individually
// addressable.
func TestEndToEndBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	const sweep = `{"workload":"memcached","configs":["base","enhanced"],"seeds":[7,8],"warm":5,"measure":25}`

	sub, code := postBatch(t, ts, sweep)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if sub.ID == "" || sub.Cached || sub.Total != 4 {
		t.Fatalf("submit = %+v, want fresh batch of 4", sub)
	}

	var st runner.BatchStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var code int
		st, code = getBatch(t, ts, sub.ID)
		if code != http.StatusOK {
			t.Fatalf("batch status = %d, want 200", code)
		}
		if st.Completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch still incomplete: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Done != 4 || st.Failed != 0 {
		t.Fatalf("completed batch = %+v, want 4 done", st)
	}
	if len(st.Aggregate) != 2 {
		t.Fatalf("aggregates = %+v, want both configs", st.Aggregate)
	}

	// Each job is individually addressable with the split wall clock.
	job, code := getJob(t, ts, st.Jobs[0].ID)
	if code != http.StatusOK || job.Result == nil {
		t.Fatalf("job %q = %d %+v, want 200 with result", st.Jobs[0].ID, code, job)
	}
	if job.Result.SetupMS <= 0 || job.Result.MeasureMS <= 0 {
		t.Errorf("result wall split = setup %.3fms measure %.3fms, want both > 0",
			job.Result.SetupMS, job.Result.MeasureMS)
	}
	if got := job.Result.SetupMS + job.Result.MeasureMS; got > job.Result.WallMS*1.01 || got < job.Result.WallMS*0.99 {
		t.Errorf("setup+measure = %.3fms, wall = %.3fms; want sum", got, job.Result.WallMS)
	}

	// Identical resubmission returns the same batch with 200.
	sub2, code := postBatch(t, ts, sweep)
	if code != http.StatusOK || !sub2.Cached || sub2.ID != sub.ID {
		t.Errorf("resubmit = %d %+v, want 200 cached id=%s", code, sub2, sub.ID)
	}
}

// TestBatchValidation: malformed and invalid sweeps answer 400 with a
// structured error; unknown batch IDs answer 404.
func TestBatchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	bad := []string{
		`{"workload":"memcached"}`,                                            // no axes
		`{"workload":"nginx","configs":["base"],"seeds":[1]}`,                 // unknown workload
		`{"workload":"memcached","configs":["turbo"],"seeds":[1]}`,            // unknown config
		`{"workload":"memcached","configs":["base"],"seeds":[1],"bogus":1}`,   // unknown field
		`{"workload":"memcached","configs":["base"],"seeds":[1],"measure":5}`, // sub-minimum budget
	}
	for _, body := range bad {
		if _, code := postBatch(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, code)
		}
	}
	if _, code := getBatch(t, ts, "b0000000000000000"); code != http.StatusNotFound {
		t.Errorf("unknown batch id = %d, want 404", code)
	}
}

// TestSubmitRejectsSubMinimumMeasure pins the HTTP contract for the
// Normalize fix: an explicit measure below the runner's minimum is a
// 400, not a silent clamp.
func TestSubmitRejectsSubMinimumMeasure(t *testing.T) {
	ts, _ := newTestServer(t)
	if _, code := postJob(t, ts, `{"workload":"memcached","config":"base","seed":1,"measure":5}`); code != http.StatusBadRequest {
		t.Errorf("explicit measure=5 = %d, want 400", code)
	}
	// The default-budget path still accepts tiny scales (clamped).
	if _, code := postJob(t, ts, `{"workload":"memcached","config":"base","seed":1,"scale":0.001}`); code != http.StatusAccepted {
		t.Errorf("scale=0.001 = %d, want 202", code)
	}
}
