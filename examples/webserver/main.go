// Webserver: the paper's headline experiment in miniature.  Serves a
// SPECweb-like request mix against the synthetic Apache bundle under
// the base and enhanced systems and prints the per-request-type
// latency distribution shift (Figure 6's story).
//
//	go run ./examples/webserver [-requests 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 300, "requests per system")
	flag.Parse()

	w := workload.Apache(7)
	results := map[string]map[string]*stats.Sample{}
	for _, cfg := range []core.Config{core.Base(7), core.Enhanced(7)} {
		sys, err := w.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		d := workload.NewDriver(w, sys, 99) // same seed: same request order
		if err := d.Warmup(60); err != nil {
			log.Fatal(err)
		}
		samp, err := d.Run(*requests)
		if err != nil {
			log.Fatal(err)
		}
		results[cfg.Label] = samp
		c := sys.Counters()
		fmt.Printf("%-9s: %.2fM instructions, %.2fM cycles, %d/%d trampolines skipped\n",
			cfg.Label, float64(c.Instructions)/1e6, float64(c.Cycles)/1e6,
			c.TrampSkips, c.TrampCalls)
	}

	fmt.Printf("\n%-13s %10s %10s %9s     %s\n", "request type", "base p50", "enh p50", "delta", "(microseconds)")
	var agg float64
	for _, class := range w.Classes {
		b := results["base"][class.Name]
		e := results["enhanced"][class.Name]
		if b.N() == 0 {
			continue
		}
		d := stats.PercentDelta(b.Percentile(50), e.Percentile(50))
		agg += stats.PercentDelta(b.Mean(), e.Mean())
		fmt.Printf("%-13s %10.2f %10.2f %+8.2f%%\n",
			class.Name, b.Percentile(50), e.Percentile(50), d)
	}
	fmt.Printf("\nmean latency improvement across types: %.2f%% (paper: up to 4%%)\n",
		agg/float64(len(w.Classes)))
}
