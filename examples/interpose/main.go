// Interpose: the dynamic-linking features that make the paper's
// hardware approach necessary in the first place.
//
// Part 1 — GNU indirect functions (§2.4.1): a library exports one
// "memcpy" symbol backed by per-hardware variants; the loader picks
// one, every call goes through the PLT (even the library's own), and
// the ABTB skips those trampolines like any other.
//
// Part 2 — runtime re-binding (§3.3 "GOT entry of library function
// modified"): the program swaps an import's GOT entry mid-run, as
// library replacement or LD_PRELOAD-style interposition does.  The
// ABTB's Bloom filter sees the store, flushes, and execution follows
// the new binding — while the paper's software patching alternative
// silently keeps calling the old code.
//
//	go run ./examples/interpose
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/linker"
	"repro/internal/objfile"
)

func build() (*objfile.Object, []*objfile.Object) {
	app := objfile.New("app")
	app.NewFunc("main").Call("memcpy").Call("logmsg").Halt()
	app.NewFunc("interpose").RebindImport("logmsg", "logmsg_json").Halt()

	libc := objfile.New("libc")
	libc.AddData("out", 16)
	libc.NewFunc("memcpy_generic").Store("out", 0, 1, 1).Ret()
	libc.NewFunc("memcpy_avx").Store("out", 0, 1, 2).Ret()
	libc.DeclareIFunc("memcpy", "memcpy_generic", "memcpy_avx")

	liblog := objfile.New("liblog")
	liblog.AddData("sink", 16)
	liblog.NewFunc("logmsg").Store("sink", 0, 1, 100).Ret()
	liblog.NewFunc("logmsg_json").Store("sink", 0, 1, 200).Ret()
	return app, []*objfile.Object{libc, liblog}
}

func regionValue(img *linker.Image, module int) uint64 {
	m := img.Modules()[module]
	return img.Memory().Read64((m.GOTEnd + 63) &^ 63)
}

func main() {
	fmt.Println("Part 1: ifunc selection by hardware level")
	for level, name := range []string{"generic CPU", "AVX CPU"} {
		app, libs := build()
		cfg := core.Enhanced(1)
		cfg.Linking.IFuncLevel = level
		sys, err := core.NewSystem(app, libs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Warmup("main", 3); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.RunOnce("main"); err != nil {
			log.Fatal(err)
		}
		c := sys.Counters()
		fmt.Printf("  %-12s memcpy variant #%d ran; %d/%d trampolines skipped\n",
			name+":", regionValue(sys.Image(), 1), c.TrampSkips, c.TrampCalls)
	}

	fmt.Println("\nPart 2: runtime re-binding under each approach")
	for _, tt := range []struct {
		label string
		cfg   core.Config
	}{
		{"enhanced (ABTB)", core.Enhanced(1)},
		{"software patching", core.Patched(1)},
	} {
		app, libs := build()
		sys, err := core.NewSystem(app, libs, tt.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Warmup("main", 3); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.RunOnce("interpose"); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.RunOnce("main"); err != nil {
			log.Fatal(err)
		}
		got := regionValue(sys.Image(), 2)
		verdict := "correct: calls follow the new binding"
		if got != 200 {
			verdict = "STALE: patched call sites bypass the GOT (the paper's §4 caveat)"
		}
		fmt.Printf("  %-18s logger wrote %d — %s\n", tt.label+":", got, verdict)
	}
}
