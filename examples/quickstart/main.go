// Quickstart: build a small dynamically linked program from scratch,
// run it on the base CPU and on the ABTB-enhanced CPU, and watch the
// trampolines disappear.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/objfile"
)

func main() {
	// A little application: main calls two library functions, one of
	// them in a loop.
	app := objfile.New("app")
	app.AddData("buf", 4096)
	main := app.NewFunc("main")
	main.ALU(10)
	main.Call("compress") // through app's PLT
	start := len(main.Body)
	main.Load("buf", 0, 16)
	main.Call("checksum") // hot: called ~8 times per run
	main.LoopBack(88, len(main.Body)-start)
	main.Halt()

	// A shared library exporting both functions; checksum calls
	// libc-style helper memcpy in a second library.
	libz := objfile.New("libz")
	libz.AddData("window", 32<<10)
	libz.NewFunc("compress").ALU(40).Load("window", 0, 64).Ret()
	libz.NewFunc("checksum").ALU(12).Call("memcpy").Ret()
	libc := objfile.New("libc")
	libc.AddData("tmp", 4096)
	libc.NewFunc("memcpy").ALU(6).Load("tmp", 0, 32).Store("tmp", 64, 32, 1).Ret()

	for _, cfg := range []core.Config{core.Base(42), core.Enhanced(42)} {
		sys, err := core.NewSystem(app, []*objfile.Object{libz, libc}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Warm up: lazy resolution and ABTB population happen here.
		if err := sys.Warmup("main", 5); err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunOnce("main")
		if err != nil {
			log.Fatal(err)
		}
		c := sys.Counters()
		fmt.Printf("%-9s instructions=%-4d cycles=%-5d trampoline calls=%d executed=%d skipped=%d\n",
			cfg.Label, res.Instructions, res.Cycles, c.TrampCalls, c.TrampInstrs, c.TrampSkips)
	}
	fmt.Println("\nThe enhanced system makes the same library calls but never")
	fmt.Println("fetches a PLT trampoline: the ABTB redirects each call to the")
	fmt.Println("library function directly, with identical architectural state.")
}
