// Linkerlab: a tour of every linking strategy the evaluation compares
// on one program — classic lazy dynamic linking, eager (BIND_NOW)
// binding, static linking, the paper's software call-site patching
// (§4.3), and lazy linking with the ABTB.  It also reproduces the
// §5.5 prefork memory argument: what patching costs a forking server
// in copied pages, and what the hardware approach costs (nothing).
//
//	go run ./examples/linkerlab
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	w := workload.Apache(11)
	fmt.Println("Linking-mode lab: synthetic Apache, 150 requests per mode")
	fmt.Printf("%-10s %12s %10s %12s %s\n", "mode", "mean (us)", "trampPKI", "resolutions", "notes")

	type row struct {
		cfg  core.Config
		note string
	}
	rows := []row{
		{core.Base(11), "lazy dynamic linking (the deployed default)"},
		{core.Eager(11), "BIND_NOW: resolution at load, trampolines remain"},
		{core.Static(11), "no PLT at all (upper bound, loses all DL benefits)"},
		{core.Patched(11), "software patching: direct calls, ASLR off, COW cost"},
		{core.Enhanced(11), "lazy + ABTB: trampolines skipped in hardware"},
	}
	for _, r := range rows {
		sys, err := w.NewSystem(r.cfg)
		if err != nil {
			log.Fatal(err)
		}
		d := workload.NewDriver(w, sys, 77)
		if err := d.Warmup(40); err != nil {
			log.Fatal(err)
		}
		samp, err := d.Run(150)
		if err != nil {
			log.Fatal(err)
		}
		mean, n := 0.0, 0
		for _, s := range samp {
			mean += s.Mean() * float64(s.N())
			n += s.N()
		}
		mean /= float64(n)
		c := sys.Counters()
		fmt.Printf("%-10s %12.2f %10.2f %12d %s\n",
			r.cfg.Label, mean, core.PKIOf(c).TrampInstrs, c.Resolutions, r.note)
	}

	// The §5.5 memory argument, via the MMU's fork/COW accounting.
	suite := experiments.NewSuite(11, 1)
	m, err := suite.MemorySavingsExperiment(450)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(experiments.FormatMemorySavings(m))
}
