// Keyvalue: the Memcached experiment (Figure 7).  Serves a GET-heavy
// CloudSuite-like mix and prints ASCII histograms of request
// processing time for the base and enhanced systems; the enhanced
// peak sits visibly to the left.
//
//	go run ./examples/keyvalue [-requests 600]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 600, "requests per system")
	flag.Parse()

	w := workload.Memcached(5)
	samples := map[string]map[string]*stats.Sample{}
	for _, cfg := range []core.Config{core.Base(5), core.Enhanced(5)} {
		sys, err := w.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		d := workload.NewDriver(w, sys, 31)
		if err := d.Warmup(60); err != nil {
			log.Fatal(err)
		}
		s, err := d.Run(*requests)
		if err != nil {
			log.Fatal(err)
		}
		samples[cfg.Label] = s
	}

	for _, class := range []string{"GET", "SET"} {
		b := samples["base"][class]
		e := samples["enhanced"][class]
		if b.N() == 0 || e.N() == 0 {
			continue
		}
		// Common bucket range over the dominant peak, as the paper
		// plots it.
		all := &stats.Sample{}
		all.AddAll(b.Values())
		all.AddAll(e.Values())
		lo, hi := all.Percentile(2), all.Percentile(90)
		const buckets = 18
		bh := stats.NewHistogram(lo, hi, buckets)
		eh := stats.NewHistogram(lo, hi, buckets)
		for _, v := range b.Values() {
			bh.Add(v)
		}
		for _, v := range e.Values() {
			eh.Add(v)
		}
		fmt.Printf("\n%s requests (n=%d/%d), processing time in us\n", class, b.N(), e.N())
		fmt.Printf("%-10s %-26s %-26s\n", "bucket", "base", "enhanced")
		for i := 0; i < buckets; i++ {
			fmt.Printf("%-10.1f %-26s %-26s\n", bh.BucketCenter(i),
				bar(bh.Fraction(i)), bar(eh.Fraction(i)))
		}
		fmt.Printf("peak: base %.1fus -> enhanced %.1fus; mean improvement %+.2f%%\n",
			bh.BucketCenter(bh.PeakBucket()), eh.BucketCenter(eh.PeakBucket()),
			stats.PercentDelta(b.Mean(), e.Mean()))
	}
}

func bar(frac float64) string {
	n := int(frac * 120)
	if n > 25 {
		n = 25
	}
	return strings.Repeat("#", n)
}
