// Package repro reproduces "Architectural Support for Dynamic
// Linking" (Agrawal, Dabral, Palit, Shen, Ferdman — ASPLOS 2015) as a
// self-contained Go simulation.
//
// The paper proposes the ABTB: a small retire-time hardware table that
// maps PLT trampoline addresses to the library functions they jump to,
// letting the branch predictor redirect library calls past their
// trampolines entirely — the performance of static linking with every
// benefit of dynamic linking.  A Bloom filter over the GOT detects the
// rare stores that invalidate mappings.
//
// This module contains the complete substrate the evaluation needs,
// implemented from scratch: an x86-64-like ISA and object format, a
// dynamic linker with lazy/eager binding, PLT/GOT emission, call-site
// patching and fork/COW accounting, set-associative caches, TLBs and
// branch predictors, a trace-driven CPU with the ABTB retire hook,
// synthetic Apache/Memcached/MySQL/Firefox workloads calibrated to the
// paper's published structure, and an experiment suite that
// regenerates every table and figure of §5.
//
// Entry points:
//
//	cmd/experiments  regenerate all tables and figures
//	cmd/dlsim        run one workload/system, print counters
//	cmd/tracedump    the pintool: trampoline profiles, working sets
//	examples/...     runnable walkthroughs of the public API
//
// The benchmarks in this directory regenerate each paper artefact and
// report its headline numbers as benchmark metrics.
package repro
